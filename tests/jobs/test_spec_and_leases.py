"""repro.jobs.spec: sweep dirs, leases, result frames, retry bookkeeping.

Pure file-protocol tests — no searches run here."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.jobs.chaos import flip_byte, truncate_tail
from repro.jobs.launcher import render_launcher, write_launcher
from repro.jobs.spec import JobDir, SweepSpec, init_sweep, load_data, load_spec


@pytest.fixture
def sweep(tmp_path):
    d = str(tmp_path / "sweep")
    rng = np.random.default_rng(1)
    X = rng.normal(size=(10, 3))
    y = (X[:, 0] > 0).astype(int)
    spec = SweepSpec(task="classification", seeds=[0, 7], lease_timeout=5.0)
    init_sweep(d, X, y, spec)
    return d, X, y, spec


class TestSpec:
    def test_round_trip_and_exact_data(self, sweep):
        d, X, y, spec = sweep
        loaded = load_spec(d)
        assert loaded == spec
        X2, y2 = load_data(d)
        assert X2.tobytes() == X.tobytes() and y2.tobytes() == y.tobytes()

    def test_config_tuples_survive_json(self, tmp_path):
        cfg = FastFTConfig(predictor_head_dims=(8, 4))
        spec = SweepSpec(task="classification", seeds=[0], config=cfg)
        restored = SweepSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable()))
        )
        assert restored.config == cfg

    def test_uninitialized_dir_is_not_a_sweep(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not an initialized sweep"):
            load_spec(str(tmp_path))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(task="classification", seeds=[])
        with pytest.raises(ValueError, match="unique"):
            SweepSpec(task="classification", seeds=[1, 1])
        with pytest.raises(ValueError, match="lease_timeout"):
            SweepSpec(task="classification", seeds=[0], lease_timeout=0)


class TestLeases:
    def test_claim_is_exclusive_until_released(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        assert job.claim("alice")
        assert not job.claim("bob")
        assert job.state() == "leased"
        assert not job.release("bob")  # only the owner can release
        assert job.release("alice")
        assert job.state() == "pending"
        assert job.claim("bob")

    def test_renew_refuses_after_reclaim(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        assert job.claim("alice")
        assert job.renew("alice")
        assert job.reclaim_if_stale(-1.0)  # any age counts as stale
        # The zombie's heartbeat must not resurrect the lease.
        assert not job.renew("alice")
        assert job.read_lease() is None

    def test_stale_detection_uses_renewed_at(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        job.claim("alice")
        now = time.time()
        assert not job.reclaim_if_stale(10.0, now=now)
        assert job.reclaim_if_stale(10.0, now=now + 11.0)

    def test_unparseable_lease_falls_back_to_mtime(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        with open(job.lease_path, "w") as fh:
            fh.write("{torn")
        lease = job.read_lease()
        assert lease["owner"] is None
        assert job.lease_age() is not None
        assert job.reclaim_if_stale(-1.0)


class TestResults:
    def test_publish_load_round_trip(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        job.publish_result({"answer": 42})
        result, reason = job.load_result()
        assert result == {"answer": 42} and reason is None
        assert job.state() == "done"

    def test_flipped_byte_is_detected(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        job.publish_result({"answer": 42})
        flip_byte(job.result_path, -5)
        result, reason = job.load_result()
        assert result is None and "digest mismatch" in reason

    def test_truncated_frame_is_detected(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        job.publish_result({"answer": 42})
        truncate_tail(job.result_path, os.path.getsize(job.result_path) - 10)
        result, reason = job.load_result()
        assert result is None and "bad frame header" in reason

    def test_result_for_wrong_seed_is_rejected(self, sweep):
        d, *_ = sweep
        JobDir(d, 0).publish_result("zero")
        os.replace(JobDir(d, 0).result_path, JobDir(d, 7).result_path)
        result, reason = JobDir(d, 7).load_result()
        assert result is None and "seed mismatch" in reason


class TestRetryBookkeeping:
    def test_attempt_counting_and_permanent_failure(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        assert job.load_attempts()["count"] == 0
        assert job.record_attempt_failure("boom", next_retry_at=0.0) == 1
        assert job.record_attempt_failure("boom again", next_retry_at=0.0) == 2
        assert job.state() == "pending"  # still retryable
        job.mark_failed("boom again", attempts=2)
        assert job.state() == "failed"
        assert job.load_failed()["last_error"] == "boom again"
        job.reset_failure_state()
        assert job.state() == "pending"
        assert job.load_attempts()["count"] == 0

    def test_valid_result_heals_a_failure_marker(self, sweep):
        d, *_ = sweep
        job = JobDir(d, 0)
        job.mark_failed("transient", attempts=3)
        job.publish_result("late but valid")
        assert job.state() == "done"


class TestLauncher:
    def test_scripts_name_every_seed(self, sweep):
        d, *_ = sweep
        for kind in ("slurm", "shell"):
            text = render_launcher(d, kind)
            assert "--seed" in text and "0 7" in text
        path = write_launcher(d, "slurm")
        assert os.access(path, os.X_OK)
        with open(path) as fh:
            assert "#SBATCH --array=0-1" in fh.read()

    def test_unknown_kind_rejected(self, sweep):
        d, *_ = sweep
        with pytest.raises(ValueError, match="unknown launcher kind"):
            render_launcher(d, "pbs")
