"""Shared fixtures for the job-fleet tests: a tiny problem and its pool
reference sweep, computed once per module and compared field-for-field
against everything the fleet produces."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core.config import FastFTConfig

TINY = dict(
    episodes=2,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=2,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=4,
    max_clusters=3,
    mi_max_rows=64,
)

SEEDS = [0, 1]


def identity_fields(result) -> tuple:
    """The bit-identity comparison basis used across the repo's tests."""
    return (
        result.plan.to_json(),
        repr(result.base_score),
        repr(result.best_score),
        [r.deterministic_dict() for r in result.history],
    )


@pytest.fixture(scope="package")
def problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(scope="package")
def tiny_config():
    return FastFTConfig(**TINY)


@pytest.fixture(scope="package")
def pool_reference(problem, tiny_config):
    """The in-process pool sweep every fleet run must reproduce exactly."""
    X, y = problem
    return api.sweep(X, y, seeds=SEEDS, config=tiny_config, n_jobs=1)
