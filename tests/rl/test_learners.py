"""Tests for the Actor-Critic and DQN-family learners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl.actor_critic import ActorCriticLearner
from repro.rl.dqn import DQN_VARIANTS, DQNLearner, make_learner
from repro.rl.replay import PrioritizedReplayBuffer, Transition


def bandit_transition(rng, learner_state_dim=4, cand_dim=2, chosen=None):
    """Candidate-value bandit: reward = first coordinate of chosen candidate."""
    s = rng.normal(size=learner_state_dim)
    cands = rng.normal(size=(3, cand_dim))
    a = chosen if chosen is not None else int(rng.integers(0, 3))
    return Transition(
        state=s,
        action_vec=cands[a],
        reward=float(cands[a, 0]),
        next_state=rng.normal(size=learner_state_dim),
        next_candidates=rng.normal(size=(3, cand_dim)),
        payload={"candidates": cands, "action_index": a},
    )


def train_on_bandit(learner, n_steps=60, seed=0):
    rng = np.random.default_rng(seed)
    buf = PrioritizedReplayBuffer(capacity=16, seed=seed)
    for _ in range(n_steps):
        s = rng.normal(size=4)
        cands = rng.normal(size=(3, 2))
        a = learner.select(s, cands)
        t = Transition(
            state=s,
            action_vec=cands[a],
            reward=float(cands[a, 0]),
            next_state=rng.normal(size=4),
            next_candidates=rng.normal(size=(3, 2)),
            payload={"candidates": cands, "action_index": a},
        )
        buf.add(t, priority=abs(learner.td_error(t)))
        if len(buf) >= 8:
            batch, idx, w = buf.sample(8)
            out = learner.update(batch, w)
            buf.update_priorities(idx, out["td_errors"])
    return learner


def greedy_accuracy(learner, n=60, seed=123):
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(n):
        s = rng.normal(size=4)
        cands = rng.normal(size=(3, 2))
        if learner.select(s, cands, greedy=True) == int(np.argmax(cands[:, 0])):
            hits += 1
    return hits / n


class TestActorCritic:
    def test_learns_candidate_value_bandit(self):
        learner = train_on_bandit(ActorCriticLearner(4, 2, seed=0))
        assert greedy_accuracy(learner) > 0.6

    def test_select_returns_valid_index(self, rng):
        learner = ActorCriticLearner(4, 2, seed=0)
        for n_cands in (1, 2, 5):
            idx = learner.select(rng.normal(size=4), rng.normal(size=(n_cands, 2)))
            assert 0 <= idx < n_cands

    def test_empty_candidates_raises(self, rng):
        with pytest.raises(ValueError):
            ActorCriticLearner(4, 2).select(rng.normal(size=4), np.empty((0, 2)))

    def test_td_error_definition(self, rng):
        learner = ActorCriticLearner(4, 2, gamma=0.9, seed=0)
        t = bandit_transition(rng)
        delta = learner.td_error(t)
        expected = t.reward + 0.9 * learner.value(t.next_state) - learner.value(t.state)
        assert delta == pytest.approx(expected)

    def test_done_transition_has_no_bootstrap(self, rng):
        learner = ActorCriticLearner(4, 2, gamma=0.9, seed=0)
        t = bandit_transition(rng)
        t.done = True
        assert learner.td_error(t) == pytest.approx(t.reward - learner.value(t.state))

    def test_update_returns_losses_and_errors(self, rng):
        learner = ActorCriticLearner(4, 2, seed=0)
        batch = [bandit_transition(rng) for _ in range(6)]
        out = learner.update(batch)
        assert set(out) == {"critic_loss", "actor_loss", "td_errors"}
        assert len(out["td_errors"]) == 6

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            ActorCriticLearner(4, 2).update([])

    def test_critic_loss_decreases_on_repeated_batch(self, rng):
        learner = ActorCriticLearner(4, 2, seed=0)
        batch = [bandit_transition(rng) for _ in range(8)]
        first = learner.update(batch)["critic_loss"]
        for _ in range(30):
            last = learner.update(batch)["critic_loss"]
        assert last < first


class TestDQNFamily:
    @pytest.mark.parametrize("kind", list(DQN_VARIANTS))
    def test_variants_construct_and_act(self, kind, rng):
        learner = make_learner(kind, 4, 2, seed=0)
        idx = learner.select(rng.normal(size=4), rng.normal(size=(3, 2)), greedy=True)
        assert 0 <= idx < 3
        assert learner.name == kind

    def test_dqn_learns_bandit(self):
        learner = train_on_bandit(DQNLearner(4, 2, epsilon=0.3, seed=0), n_steps=80)
        assert greedy_accuracy(learner) > 0.55

    def test_epsilon_decays(self):
        learner = DQNLearner(4, 2, epsilon=1.0, epsilon_decay=0.5, epsilon_min=0.1, seed=0)
        rng = np.random.default_rng(0)
        batch = [bandit_transition(rng) for _ in range(4)]
        for _ in range(5):
            learner.update(batch)
        assert learner.epsilon < 1.0

    def test_target_sync(self, rng):
        learner = DQNLearner(4, 2, target_sync=1, seed=0)
        batch = [bandit_transition(rng) for _ in range(4)]
        learner.update(batch)
        s, c = rng.normal(size=4), rng.normal(size=(2, 2))
        online_q = learner.online.q_values(s, c).data
        target_q = learner.target.q_values(s, c).data
        assert np.allclose(online_q, target_q)

    def test_double_uses_online_argmax(self, rng):
        learner = make_learner("double_dqn", 4, 2, seed=0)
        t = bandit_transition(rng)
        assert np.isfinite(learner._target_value(t))

    def test_dueling_q_centers_advantage(self, rng):
        learner = make_learner("dueling_dqn", 4, 2, seed=0)
        q = learner.online.q_values(rng.normal(size=4), rng.normal(size=(5, 2))).data
        assert q.shape == (5,)

    def test_terminal_transition_target_is_reward(self, rng):
        learner = DQNLearner(4, 2, seed=0)
        t = bandit_transition(rng)
        t.done = True
        assert learner._target_value(t) == t.reward

    def test_make_learner_unknown_raises(self):
        with pytest.raises(ValueError):
            make_learner("sarsa", 4, 2)

    def test_make_learner_actor_critic(self):
        learner = make_learner("actor_critic", 4, 2, seed=0)
        assert isinstance(learner, ActorCriticLearner)
