"""Tests for replay buffers and the sum tree (Eq. 10 semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.replay import PrioritizedReplayBuffer, ReplayBuffer, SumTree, Transition


def make_transition(reward: float = 0.0) -> Transition:
    return Transition(
        state=np.zeros(3),
        action_vec=np.zeros(2),
        reward=reward,
        next_state=np.zeros(3),
    )


class TestSumTree:
    def test_total_tracks_sets(self):
        tree = SumTree(8)
        tree.set(0, 1.0)
        tree.set(3, 2.5)
        assert tree.total() == pytest.approx(3.5)
        tree.set(0, 0.5)
        assert tree.total() == pytest.approx(3.0)

    def test_get_roundtrip(self):
        tree = SumTree(4)
        tree.set(2, 7.0)
        assert tree.get(2) == 7.0

    def test_find_prefix_boundaries(self):
        tree = SumTree(4)
        for i, p in enumerate([1.0, 2.0, 3.0, 4.0]):
            tree.set(i, p)
        assert tree.find_prefix(0.5) == 0
        assert tree.find_prefix(1.5) == 1
        assert tree.find_prefix(3.5) == 2
        assert tree.find_prefix(9.9) == 3

    def test_find_prefix_skips_zero_priority(self):
        tree = SumTree(4)
        tree.set(1, 5.0)
        assert tree.find_prefix(2.5) == 1

    def test_out_of_range_raises(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.set(4, 1.0)
        with pytest.raises(ValueError):
            tree.set(0, -1.0)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_total_equals_sum(self, priorities):
        tree = SumTree(16)
        for i, p in enumerate(priorities):
            tree.set(i, p)
        assert tree.total() == pytest.approx(sum(priorities), rel=1e-9, abs=1e-9)

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=16), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_find_prefix_lands_on_positive_leaf(self, priorities, frac):
        tree = SumTree(16)
        for i, p in enumerate(priorities):
            tree.set(i, p)
        idx = tree.find_prefix(frac * tree.total() * 0.999)
        assert 0 <= idx < len(priorities)
        assert tree.get(idx) > 0


class TestUniformBuffer:
    def test_capacity_enforced(self):
        buf = ReplayBuffer(capacity=3, seed=0)
        for i in range(10):
            buf.add(make_transition(i))
        assert len(buf) == 3

    def test_ring_overwrites_oldest(self):
        buf = ReplayBuffer(capacity=2, seed=0)
        for i in range(3):
            buf.add(make_transition(i))
        rewards = {t.reward for t in buf.all()}
        assert rewards == {1.0, 2.0}

    def test_sample_weights_all_one(self):
        buf = ReplayBuffer(capacity=4, seed=0)
        for i in range(4):
            buf.add(make_transition(i))
        _, _, weights = buf.sample(3)
        assert (weights == 1.0).all()

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=2).sample(1)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestPrioritizedBuffer:
    def test_capacity_enforced(self):
        buf = PrioritizedReplayBuffer(capacity=4, seed=0)
        for i in range(10):
            buf.add(make_transition(i), priority=1.0)
        assert len(buf) == 4
        assert buf.is_full

    def test_high_priority_sampled_more(self):
        buf = PrioritizedReplayBuffer(capacity=8, alpha=1.0, seed=0)
        for i in range(8):
            buf.add(make_transition(i), priority=100.0 if i == 5 else 0.001)
        counts = np.zeros(8)
        for _ in range(200):
            batch, idx, _ = buf.sample(2)
            for i in idx:
                counts[i] += 1
        assert counts[5] > counts.sum() * 0.5

    def test_update_priorities_changes_distribution(self):
        buf = PrioritizedReplayBuffer(capacity=4, alpha=1.0, seed=0)
        for i in range(4):
            buf.add(make_transition(i), priority=1.0)
        buf.update_priorities(np.array([2]), np.array([1000.0]))
        _, idx, _ = buf.sample(4)
        assert (idx == 2).sum() >= 2

    def test_importance_weights_bounded(self):
        buf = PrioritizedReplayBuffer(capacity=8, seed=0)
        for i in range(8):
            buf.add(make_transition(i), priority=float(i + 1))
        _, _, weights = buf.sample(6)
        assert weights.max() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_uniform_records_api(self):
        buf = PrioritizedReplayBuffer(capacity=4, seed=0)
        for i in range(4):
            buf.add(make_transition(i))
        records = buf.sample_uniform_records(3)
        assert len(records) == 3

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(capacity=2).sample(1)

    def test_negative_priority_uses_abs(self):
        buf = PrioritizedReplayBuffer(capacity=2, seed=0)
        buf.add(make_transition(), priority=-5.0)  # |δ| semantics
        assert len(buf) == 1
        batch, _, _ = buf.sample(1)
        assert len(batch) == 1

    def test_payload_preserved(self):
        buf = PrioritizedReplayBuffer(capacity=2, seed=0)
        t = make_transition()
        t.payload["sequence"] = np.array([1, 2, 3])
        buf.add(t)
        out, _, _ = buf.sample(1)
        assert (out[0].payload["sequence"] == [1, 2, 3]).all()
