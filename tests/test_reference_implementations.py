"""Property tests pinning fast implementations to naive references.

Each test implements the textbook O(n²)/brute-force version of a quantity
and checks our optimized implementation against it on random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import f1_score, precision_score, recall_score, roc_auc_score
from repro.ml.mutual_info import discrete_mutual_info
from repro.rl.replay import PrioritizedReplayBuffer, SumTree, Transition


def naive_auc(y: np.ndarray, scores: np.ndarray) -> float:
    """Mann-Whitney U definition: P(score⁺ > score⁻) + ½P(tie)."""
    pos = scores[y == 1]
    neg = scores[y == 0]
    wins = ties = 0
    for p in pos:
        for n in neg:
            if p > n:
                wins += 1
            elif p == n:
                ties += 1
    total = len(pos) * len(neg)
    return (wins + 0.5 * ties) / total


def naive_mi(a: np.ndarray, b: np.ndarray) -> float:
    """Double loop over the joint support."""
    mi = 0.0
    for va in np.unique(a):
        for vb in np.unique(b):
            p_ab = np.mean((a == va) & (b == vb))
            if p_ab == 0:
                continue
            p_a = np.mean(a == va)
            p_b = np.mean(b == vb)
            mi += p_ab * np.log(p_ab / (p_a * p_b))
    return mi


class TestAucAgainstMannWhitney:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_matches_pairwise_definition(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 60))
        y = rng.integers(0, 2, n)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        scores = rng.normal(size=n).round(1)  # rounding forces ties
        assert roc_auc_score(y, scores) == pytest.approx(naive_auc(y, scores), abs=1e-9)


class TestMIAgainstDoubleLoop:
    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_matches_joint_support_sum(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 100))
        a = rng.integers(0, 4, n)
        b = (a + rng.integers(0, 3, n)) % 4
        assert discrete_mutual_info(a, b) == pytest.approx(naive_mi(a, b), abs=1e-9)


class TestF1AgainstManualCounts:
    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_binary_f1_from_confusion_matrix(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 80))
        y_true = rng.integers(0, 2, n)
        y_pred = rng.integers(0, 2, n)
        tp = int(np.sum((y_true == 1) & (y_pred == 1)))
        fp = int(np.sum((y_true == 0) & (y_pred == 1)))
        fn = int(np.sum((y_true == 1) & (y_pred == 0)))
        p = tp / (tp + fp) if tp + fp else 0.0
        r = tp / (tp + fn) if tp + fn else 0.0
        expected = 2 * p * r / (p + r) if p + r else 0.0
        if len(np.unique(np.concatenate([y_true, y_pred]))) < 2:
            return  # binary average undefined for single-class slices
        assert f1_score(y_true, y_pred, average="binary") == pytest.approx(expected)
        assert precision_score(y_true, y_pred, average="binary") == pytest.approx(p)
        assert recall_score(y_true, y_pred, average="binary") == pytest.approx(r)


class TestSumTreeAgainstNaivePrefix:
    @given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=32), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_find_prefix_matches_linear_scan(self, priorities, frac):
        tree = SumTree(32)
        for i, p in enumerate(priorities):
            tree.set(i, p)
        total = sum(priorities)
        if total == 0:
            return
        mass = frac * total * 0.9999
        # Naive linear scan for the first index whose prefix sum covers mass.
        running = 0.0
        expected = len(priorities) - 1
        for i, p in enumerate(priorities):
            running += p
            if mass <= running and p > 0:
                expected = i
                break
        assert tree.find_prefix(mass) == expected


class TestPrioritizedSamplingFrequencies:
    def test_empirical_frequency_tracks_priorities(self):
        """With α=1 the sampling law is exactly p_i/Σp — check empirically."""
        priorities = np.array([1.0, 2.0, 4.0, 8.0])
        buf = PrioritizedReplayBuffer(capacity=4, alpha=1.0, eps=0.0, seed=0)
        for i, p in enumerate(priorities):
            t = Transition(
                state=np.zeros(1), action_vec=np.zeros(1), reward=float(i),
                next_state=np.zeros(1),
            )
            buf.add(t, priority=p)
        counts = np.zeros(4)
        draws = 4000
        for _ in range(draws):
            _, idx, _ = buf.sample(1)
            counts[idx[0]] += 1
        empirical = counts / draws
        expected = priorities / priorities.sum()
        assert np.abs(empirical - expected).max() < 0.05
