"""Engine equivalence and fold-parallel CV determinism.

The presorted split engine's whole contract is *bit-identity*: same tree
arrays, same thresholds, same importances, same predictions as the naive
reference, across tasks, shapes, tie structures and hyper-parameters.
These property-style tests sweep randomized datasets (with duplicated,
constant and heavily-tied columns) and assert exact array equality, plus
determinism of the fold-parallel cross-validation path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.evaluation import DownstreamEvaluator, default_model_for_task
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import f1_score
from repro.ml.model_selection import cross_val_score
from repro.ml.split_engine import (
    ENGINE_NAMES,
    NaiveEngine,
    PresortEngine,
    SplitEngine,
    resolve_engine,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

TREE_ARRAYS = ("feature", "threshold", "left", "right", "value")


def _assert_identical_trees(a, b, context=""):
    for attr in TREE_ARRAYS:
        assert np.array_equal(getattr(a.tree_, attr), getattr(b.tree_, attr)), (
            f"tree_.{attr} differs {context}"
        )
    assert np.array_equal(a.feature_importances_, b.feature_importances_), context


def _tied_matrix(rng, n, d):
    """Random matrix with the tie structures FastFT feature spaces produce."""
    X = rng.normal(size=(n, d))
    X[:, 0] = np.round(X[:, 0])  # heavy cross-row ties
    if d > 2:
        X[:, 1] = X[:, 2]  # duplicated column
    X[:, -1] = 3.25  # constant column
    return X


class TestEngineEquivalenceProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_classifier_trees_identical(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 300))
        d = int(rng.integers(3, 12))
        n_classes = int(rng.integers(2, 5))
        X = _tied_matrix(rng, n, d)
        score = X @ rng.normal(size=d) + 0.3 * rng.normal(size=n)
        edges = np.quantile(score, np.linspace(0, 1, n_classes + 1)[1:-1])
        y = np.searchsorted(edges, score)
        for max_features in (None, "sqrt", 2):
            a = DecisionTreeClassifier(
                max_depth=6, max_features=max_features, seed=7
            ).fit(X, y)
            b = DecisionTreeClassifier(
                max_depth=6, max_features=max_features, seed=7, split_engine="presort"
            ).fit(X, y)
            _assert_identical_trees(a, b, f"(seed={seed}, max_features={max_features})")
            assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    @pytest.mark.parametrize("seed", range(5))
    def test_regressor_trees_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(30, 300))
        d = int(rng.integers(3, 10))
        X = _tied_matrix(rng, n, d)
        y = X @ rng.normal(size=d) + 0.1 * rng.normal(size=n)
        for msl in (1, 4):
            a = DecisionTreeRegressor(max_depth=7, min_samples_leaf=msl, seed=1).fit(X, y)
            b = DecisionTreeRegressor(
                max_depth=7, min_samples_leaf=msl, seed=1, split_engine="presort"
            ).fit(X, y)
            _assert_identical_trees(a, b, f"(seed={seed}, min_samples_leaf={msl})")
            assert np.array_equal(a.predict(X), b.predict(X))

    @pytest.mark.parametrize("seed", range(3))
    def test_classifier_forest_identical(self, seed):
        rng = np.random.default_rng(200 + seed)
        X = _tied_matrix(rng, 150, 8)
        y = (X @ rng.normal(size=8) > 0).astype(int)
        a = RandomForestClassifier(n_estimators=6, max_depth=6, seed=seed).fit(X, y)
        b = RandomForestClassifier(
            n_estimators=6, max_depth=6, seed=seed, split_engine="presort"
        ).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))
        assert np.array_equal(a.feature_importances_, b.feature_importances_)

    def test_detection_style_imbalanced_forest_identical(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(250, 6))
        y = (rng.random(250) < 0.07).astype(int)
        X[y == 1] += 2.0
        a = RandomForestClassifier(n_estimators=5, max_depth=6, seed=0).fit(X, y)
        b = RandomForestClassifier(
            n_estimators=5, max_depth=6, seed=0, split_engine="presort"
        ).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_regression_forest_identical(self):
        rng = np.random.default_rng(11)
        X = _tied_matrix(rng, 200, 7)
        y = X @ rng.normal(size=7)
        a = RandomForestRegressor(n_estimators=5, max_depth=7, seed=2).fit(X, y)
        b = RandomForestRegressor(
            n_estimators=5, max_depth=7, seed=2, split_engine="presort"
        ).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
        assert np.array_equal(a.feature_importances_, b.feature_importances_)

    def test_no_bootstrap_forest_identical(self):
        rng = np.random.default_rng(13)
        X = _tied_matrix(rng, 120, 6)
        y = (X[:, 0] > 0).astype(int)
        a = RandomForestClassifier(n_estimators=3, bootstrap=False, seed=3).fit(X, y)
        b = RandomForestClassifier(
            n_estimators=3, bootstrap=False, seed=3, split_engine="presort"
        ).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_evaluator_scores_identical_across_engines(self):
        rng = np.random.default_rng(17)
        X = _tied_matrix(rng, 200, 10)
        y = (X @ rng.normal(size=10) > 0).astype(int)
        scores = {
            engine: DownstreamEvaluator(
                "classification", n_splits=3, seed=0, engine=engine
            ).evaluate(X, y)
            for engine in ENGINE_NAMES
        }
        assert scores["naive"] == scores["presort"]


class TestEngineResolution:
    def test_resolve_names_instances_classes(self):
        assert isinstance(resolve_engine("naive"), NaiveEngine)
        assert isinstance(resolve_engine("presort"), PresortEngine)
        assert isinstance(resolve_engine(None), NaiveEngine)
        assert isinstance(resolve_engine(PresortEngine), PresortEngine)
        inst = PresortEngine()
        assert resolve_engine(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown split engine"):
            resolve_engine("quantum")
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_engine_reusable_across_sequential_fits(self):
        rng = np.random.default_rng(3)
        engine = PresortEngine()
        X1 = rng.normal(size=(80, 4))
        X2 = rng.normal(size=(50, 6))
        y1 = (X1[:, 0] > 0).astype(int)
        y2 = X2 @ rng.normal(size=6)
        a = DecisionTreeClassifier(max_depth=4, seed=0, split_engine=engine).fit(X1, y1)
        b = DecisionTreeRegressor(max_depth=4, seed=0, split_engine=engine).fit(X2, y2)
        ref_a = DecisionTreeClassifier(max_depth=4, seed=0).fit(X1, y1)
        ref_b = DecisionTreeRegressor(max_depth=4, seed=0).fit(X2, y2)
        _assert_identical_trees(a, ref_a)
        _assert_identical_trees(b, ref_b)

    def test_fitted_estimator_pickles_lean(self):
        import pickle

        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 5))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(
            n_estimators=3, seed=0, split_engine="presort"
        ).fit(X, y)
        blob = pickle.dumps(forest)
        # The engine must not drag training data or workspace buffers along.
        assert len(blob) < 200_000
        clone_forest = pickle.loads(blob)
        assert np.array_equal(clone_forest.predict(X), forest.predict(X))

    def test_pre_engine_pickles_resolve_to_naive(self):
        """Estimators from before the engine layer lack the attribute;
        the class-level backstop must supply the reference engine."""
        tree = DecisionTreeClassifier(max_depth=3, seed=0)
        del tree.split_engine  # simulate an old unpickled instance
        assert tree.split_engine == "naive"
        X = np.random.default_rng(0).normal(size=(40, 3))
        y = (X[:, 0] > 0).astype(int)
        tree.fit(X, y)  # resolves via the class attribute


class TestFoldParallelCV:
    def test_parallel_scores_identical_to_serial(self, binary_data):
        X, y = binary_data
        est = RandomForestClassifier(n_estimators=3, max_depth=4, seed=0)
        serial = cross_val_score(
            est, X, y, scorer=f1_score, n_splits=3, seed=0, stratified=True
        )
        parallel = cross_val_score(
            est, X, y, scorer=f1_score, n_splits=3, seed=0, stratified=True, n_jobs=2
        )
        assert np.array_equal(serial, parallel)

    def test_return_fold_times(self, binary_data):
        X, y = binary_data
        est = RandomForestClassifier(n_estimators=2, max_depth=3, seed=0)
        scores, times = cross_val_score(
            est, X, y, scorer=f1_score, n_splits=3, seed=0,
            stratified=True, return_fold_times=True,
        )
        assert len(times) == 3
        assert all(t > 0 for t in times)
        plain = cross_val_score(est, X, y, scorer=f1_score, n_splits=3, seed=0, stratified=True)
        assert np.array_equal(scores, plain)

    def test_invalid_n_jobs(self, binary_data):
        X, y = binary_data
        est = RandomForestClassifier(n_estimators=2, seed=0)
        with pytest.raises(ValueError, match="n_jobs"):
            cross_val_score(est, X, y, scorer=f1_score, n_splits=2, n_jobs=0)

    def test_unpicklable_scorer_falls_back_to_serial(self, binary_data):
        X, y = binary_data
        est = RandomForestClassifier(n_estimators=2, max_depth=3, seed=0)
        serial = cross_val_score(est, X, y, scorer=f1_score, n_splits=2, seed=0)
        with pytest.warns(RuntimeWarning, match="picklable"):
            fallback = cross_val_score(
                est, X, y, scorer=lambda yt, yp: f1_score(yt, yp), n_splits=2,
                seed=0, n_jobs=2,
            )
        assert np.array_equal(serial, fallback)

    def test_evaluator_parallel_score_and_accounting(self, binary_data):
        X, y = binary_data
        serial = DownstreamEvaluator("classification", n_splits=3, seed=0)
        parallel = DownstreamEvaluator("classification", n_splits=3, seed=0, cv_jobs=2)
        assert serial(X, y) == parallel(X, y)
        assert parallel.n_calls == 1
        # Summed per-fold fit+score time, not pool wall time: must be
        # positive and of the same order as the serial wall measurement.
        assert parallel.total_time > 0
        assert parallel.total_time > 0.25 * serial.total_time

    def test_evaluator_rejects_bad_cv_jobs(self):
        with pytest.raises(ValueError, match="cv_jobs"):
            DownstreamEvaluator("classification", cv_jobs=0)


class TestEngineInterface:
    def test_begin_fit_rejects_unknown_criterion(self):
        engine = NaiveEngine()
        with pytest.raises(ValueError, match="criterion"):
            engine.begin_fit(np.zeros((4, 2)), np.zeros(4), "entropy", 0, 1)

    def test_base_best_split_is_abstract(self):
        engine = SplitEngine()
        engine.begin_fit(np.zeros((4, 2)), np.zeros(4), "gini", 2, 1)
        with pytest.raises(NotImplementedError):
            engine.best_split(np.arange(4), np.arange(2), np.zeros(4))

    def test_default_model_for_task_carries_engine(self):
        model = default_model_for_task("classification", split_engine="naive")
        assert model.split_engine == "naive"
        model = default_model_for_task("regression")
        assert model.split_engine == "presort"
