"""Tests for KFold, StratifiedKFold, train_test_split, cross_val_score."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import KFold, StratifiedKFold, cross_val_score, train_test_split


class TestKFold:
    def test_partitions_cover_everything(self):
        folds = list(KFold(5, seed=0).split(23))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_test_disjoint(self):
        for train, test in KFold(4, seed=1).split(40):
            assert set(train).isdisjoint(test)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_splits_raises(self):
        with pytest.raises(ValueError):
            KFold(1)

    def test_deterministic_with_seed(self):
        a = [t.tolist() for _, t in KFold(3, seed=7).split(30)]
        b = [t.tolist() for _, t in KFold(3, seed=7).split(30)]
        assert a == b

    @given(st.integers(6, 100), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_fold_sizes_balanced(self, n, k):
        sizes = [len(test) for _, test in KFold(k, seed=0).split(n)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n


class TestStratifiedKFold:
    def test_class_ratio_preserved(self):
        y = np.array([0] * 80 + [1] * 20)
        for train, test in StratifiedKFold(4, seed=0).split(y):
            ratio = np.mean(y[test])
            assert ratio == pytest.approx(0.2, abs=0.06)

    def test_rare_class_present_in_most_folds(self):
        y = np.array([0] * 50 + [1] * 3)
        folds_with_positive = sum(
            1 for _, test in StratifiedKFold(3, seed=0).split(y) if (y[test] == 1).any()
        )
        assert folds_with_positive == 3

    def test_partition_property(self):
        y = np.random.default_rng(0).integers(0, 3, 50)
        all_test = np.concatenate([t for _, t in StratifiedKFold(5, seed=0).split(y)])
        assert sorted(all_test.tolist()) == list(range(50))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.2, seed=0)
        assert len(X_test) == 20 and len(X_train) == 80

    def test_multiple_arrays_aligned(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, seed=0)
        assert (X_train.ravel() == y_train).all()
        assert (X_test.ravel() == y_test).all()

    def test_stratified_keeps_ratio(self):
        y = np.array([0] * 90 + [1] * 10)
        _, y_test = train_test_split(y, test_size=0.2, seed=0, stratify=y)
        assert np.mean(y_test) == pytest.approx(0.1, abs=0.05)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros(5), np.zeros(6))


class TestCrossValScore:
    def test_reasonable_scores_on_separable_data(self, binary_data):
        X, y = binary_data
        scores = cross_val_score(
            LogisticRegression(), X, y, scorer=accuracy_score, n_splits=4, stratified=True
        )
        assert len(scores) == 4
        assert scores.mean() > 0.8

    def test_use_proba_returns_scores_not_labels(self, binary_data):
        X, y = binary_data

        def check_continuous(y_true, pred):
            assert np.any((pred > 0) & (pred < 1))
            return 1.0

        cross_val_score(
            LogisticRegression(), X, y, scorer=check_continuous, n_splits=3, use_proba=True
        )
