"""Tests for the feature-selection substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.feature_selection import SelectKBest, VarianceThreshold, mrmr_select


class TestVarianceThreshold:
    def test_drops_constant_columns(self, rng):
        X = np.column_stack([rng.normal(size=50), np.full(50, 3.0), rng.normal(size=50)])
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (50, 2)

    def test_all_constant_keeps_one(self):
        X = np.ones((20, 3))
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (20, 1)

    def test_threshold_value(self, rng):
        X = np.column_stack([rng.normal(0, 0.01, 100), rng.normal(0, 10.0, 100)])
        selector = VarianceThreshold(threshold=1.0).fit(X)
        assert selector.get_support().tolist() == [False, True]

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            VarianceThreshold(threshold=-1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            VarianceThreshold().transform(np.ones((2, 2)))


class TestSelectKBest:
    def test_keeps_informative_columns(self, rng):
        X = rng.normal(size=(400, 5))
        y = (X[:, 1] + X[:, 3] > 0).astype(int)
        selector = SelectKBest(k=2).fit(X, y)
        assert set(np.where(selector.get_support())[0]) == {1, 3}

    def test_k_capped_at_columns(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        out = SelectKBest(k=10).fit_transform(X, y)
        assert out.shape == (100, 3)

    def test_regression_task(self, rng):
        X = rng.normal(size=(300, 4))
        y = X[:, 2] * 3.0
        selector = SelectKBest(k=1, task="regression").fit(X, y)
        assert np.where(selector.get_support())[0].tolist() == [2]

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            SelectKBest(k=0)

    def test_scores_exposed(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        selector = SelectKBest(k=2).fit(X, y)
        assert selector.scores_.shape == (3,)


class TestMRMR:
    def test_prefers_nonredundant_set(self, rng):
        """Given a duplicated informative column, mRMR picks the duplicate last."""
        base = rng.normal(size=500)
        other = rng.normal(size=500)
        X = np.column_stack([base, base + 0.01 * rng.normal(size=500), other])
        y = ((base > 0) ^ (other > 0)).astype(int)
        picked = mrmr_select(X, y, k=2)
        assert set(picked) == {0, 2} or set(picked) == {1, 2}

    def test_first_pick_is_most_relevant(self, rng):
        X = rng.normal(size=(400, 4))
        y = (X[:, 2] > 0).astype(int)
        assert mrmr_select(X, y, k=3)[0] == 2

    def test_k_bounds(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        assert len(mrmr_select(X, y, k=99)) == 3
        with pytest.raises(ValueError):
            mrmr_select(X, y, k=0)

    def test_order_is_pick_order(self, rng):
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] > 0).astype(int)
        picked = mrmr_select(X, y, k=5)
        assert sorted(picked) == [0, 1, 2, 3, 4]
        assert len(set(picked)) == 5
