"""Unit + property tests for repro.ml.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    one_minus_mae,
    one_minus_mse,
    one_minus_rae,
    precision_score,
    recall_score,
    relative_absolute_error,
    roc_auc_score,
    roc_curve,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_none_correct(self):
        assert accuracy_score([1, 1, 1], [0, 0, 0]) == 0.0

    def test_half(self):
        assert accuracy_score([1, 0], [1, 1]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionCounts:
    def test_binary_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        tp, fp, fn, support = confusion_counts(y_true, y_pred)
        # labels sorted: [0, 1]
        assert tp.tolist() == [1, 2]
        assert fp.tolist() == [1, 1]
        assert fn.tolist() == [1, 1]
        assert support.tolist() == [2, 3]


class TestPrecisionRecallF1:
    def test_binary_precision(self):
        # positives: predicted {0,3,4}; true positive {0,4}.
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        assert precision_score(y_true, y_pred, average="binary") == pytest.approx(2 / 3)

    def test_binary_recall(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        assert recall_score(y_true, y_pred, average="binary") == pytest.approx(2 / 3)

    def test_binary_f1_harmonic(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        p = precision_score(y_true, y_pred, average="binary")
        r = recall_score(y_true, y_pred, average="binary")
        assert f1_score(y_true, y_pred, average="binary") == pytest.approx(2 * p * r / (p + r))

    def test_binary_average_on_multiclass_raises(self):
        with pytest.raises(ValueError):
            f1_score([0, 1, 2], [0, 1, 2], average="binary")

    def test_perfect_weighted_f1(self):
        y = [0, 1, 2, 2, 1, 0]
        assert f1_score(y, y) == pytest.approx(1.0)

    def test_micro_equals_accuracy_single_label_task(self):
        y_true = np.array([0, 1, 2, 1, 0, 2, 2])
        y_pred = np.array([0, 2, 2, 1, 0, 1, 2])
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy_score(y_true, y_pred)
        )

    def test_macro_averages_per_class(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 0]
        # class 0: p=0.5, r=1, f1=2/3; class 1: 0.
        assert f1_score(y_true, y_pred, average="macro") == pytest.approx(1 / 3)

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError):
            precision_score([0, 1], [0, 1], average="bogus")

    @given(
        st.lists(st.integers(0, 2), min_size=2, max_size=60),
        st.lists(st.integers(0, 2), min_size=2, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_f1_bounded(self, a, b):
        n = min(len(a), len(b))
        score = f1_score(a[:n], b[:n])
        assert 0.0 <= score <= 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_inverted_scores(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.05)

    def test_ties_handled(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1, 1], [0.1, 0.2, 0.3])

    def test_curve_endpoints(self):
        fpr, tpr = roc_curve([0, 1], [0.3, 0.7])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    @given(st.integers(10, 200))
    @settings(max_examples=20, deadline=None)
    def test_complement_symmetry(self, n):
        rng = np.random.default_rng(n)
        y = rng.integers(0, 2, n)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=n)
        assert roc_auc_score(y, s) == pytest.approx(1.0 - roc_auc_score(y, -s), abs=1e-9)


class TestRegressionMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_mse(self):
        assert mean_squared_error([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_rae_perfect(self):
        assert relative_absolute_error([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_rae_mean_predictor_is_one(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, y.mean())
        assert relative_absolute_error(y, pred) == pytest.approx(1.0)

    def test_one_minus_forms(self):
        y, p = np.array([1.0, 2.0]), np.array([1.0, 2.0])
        assert one_minus_rae(y, p) == 1.0
        assert one_minus_mae(y, p) == 1.0
        assert one_minus_mse(y, p) == 1.0

    def test_constant_target_rae(self):
        assert relative_absolute_error([2.0, 2.0], [2.0, 2.0]) == 0.0
        assert relative_absolute_error([2.0, 2.0], [3.0, 3.0]) == float("inf")

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_one_minus_rae_le_one(self, values):
        y = np.asarray(values)
        pred = y + 1.0
        assert one_minus_rae(y, pred) <= 1.0


class TestLogLoss:
    def test_confident_correct_is_small(self):
        proba = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert log_loss([0, 1], proba) < 0.05

    def test_confident_wrong_is_large(self):
        proba = np.array([[0.01, 0.99], [0.99, 0.01]])
        assert log_loss([0, 1], proba) > 2.0

    def test_1d_proba_treated_as_positive_class(self):
        assert log_loss([1, 0], np.array([0.9, 0.1])) < 0.2
