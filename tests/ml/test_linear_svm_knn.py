"""Tests for linear models, SVM and k-NN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.linear import LinearRegression, LogisticRegression, RidgeClassifier, RidgeRegression
from repro.ml.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.svm import LinearSVMClassifier


class TestLogisticRegression:
    def test_separable_data(self, binary_data):
        X, y = binary_data
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass(self, multiclass_data):
        X, y = multiclass_data
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.55

    def test_proba_rows_sum_to_one(self, binary_data):
        X, y = binary_data
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_regularization_shrinks_weights(self, binary_data):
        X, y = binary_data
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_invalid_c_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0)

    def test_scale_invariance_of_predictions(self, binary_data):
        """Internal standardization should make huge feature scales harmless."""
        X, y = binary_data
        base = LogisticRegression().fit(X, y).predict(X)
        scaled = LogisticRegression().fit(X * 1e6, y).predict(X * 1e6)
        assert np.mean(base == scaled) > 0.95


class TestLinearRegression:
    def test_recovers_exact_linear_map(self, rng):
        X = rng.normal(size=(100, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5
        model = LinearRegression().fit(X, y)
        assert model.coef_ == pytest.approx([2.0, -1.0, 0.0], abs=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_r2_perfect(self, rng):
        X = rng.normal(size=(50, 2))
        y = X @ np.array([1.0, 2.0])
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)


class TestRidge:
    def test_alpha_zero_matches_ols_predictions(self, rng):
        X = rng.normal(size=(80, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.1 * rng.normal(size=80)
        ridge = RidgeRegression(alpha=1e-8).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.predict(X), ols.predict(X), atol=1e-4)

    def test_large_alpha_shrinks_to_mean(self, rng):
        X = rng.normal(size=(80, 3))
        y = X[:, 0] * 3
        ridge = RidgeRegression(alpha=1e9).fit(X, y)
        assert np.allclose(ridge.predict(X), y.mean(), atol=0.05)

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_ridge_classifier_binary(self, binary_data):
        X, y = binary_data
        model = RidgeClassifier().fit(X, y)
        assert model.score(X, y) > 0.85

    def test_ridge_classifier_multiclass_proba(self, multiclass_data):
        X, y = multiclass_data
        proba = RidgeClassifier().fit(X, y).predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestLinearSVM:
    def test_separable_data(self, binary_data):
        X, y = binary_data
        model = LinearSVMClassifier().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass_ovr(self, multiclass_data):
        X, y = multiclass_data
        model = LinearSVMClassifier().fit(X, y)
        assert model.decision_function(X).shape == (len(X), 3)
        assert model.score(X, y) > 0.5

    def test_proba_bounded(self, binary_data):
        X, y = binary_data
        proba = LinearSVMClassifier().fit(X, y).predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_margin_sign_matches_prediction(self, binary_data):
        X, y = binary_data
        model = LinearSVMClassifier().fit(X, y)
        scores = model.decision_function(X)
        assert ((scores > 0) == (model.predict(X) == model.classes_[1])).all()


class TestKNN:
    def test_k1_memorizes_training_data(self, binary_data):
        X, y = binary_data
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_k_larger_than_n_ok(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert model.predict(np.array([[1.5]]))[0] == 1

    def test_regressor_interpolates(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(5.0)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)


class TestEstimatorProtocol:
    @pytest.mark.parametrize(
        "estimator",
        [
            LogisticRegression(C=2.0),
            RidgeRegression(alpha=3.0),
            LinearSVMClassifier(C=0.5),
            KNeighborsClassifier(n_neighbors=7),
        ],
    )
    def test_clone_preserves_params(self, estimator):
        copy = clone(estimator)
        assert type(copy) is type(estimator)
        assert copy.get_params() == estimator.get_params()

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError):
            LogisticRegression().set_params(bogus=1)

    def test_repr_contains_params(self):
        assert "C=2.0" in repr(LogisticRegression(C=2.0))
