"""Tests for decision trees, random forests and gradient boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestDecisionTreeClassifier:
    def test_fits_xor_perfectly(self):
        """Axis-aligned XOR needs depth 2 — a linear model cannot do this."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert tree.score(X, y) > 0.98

    def test_max_depth_one_is_a_stump(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        # A stump has exactly one internal node: 3 nodes total.
        assert len(tree.tree_.feature) == 3

    def test_min_samples_leaf_respected(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(min_samples_leaf=30, seed=0).fit(X, y)
        leaf_mask = tree.tree_.feature == -1
        assert leaf_mask.sum() >= 1  # structural sanity
        assert np.isfinite(tree.predict_proba(X)).all()

    def test_predict_proba_rows_sum_to_one(self, multiclass_data):
        X, y = multiclass_data
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self):
        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array(["no", "yes", "no", "yes"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= {"no", "yes"}

    def test_feature_importances_sum_to_one(self, binary_data):
        X, y = binary_data
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert (tree.feature_importances_ >= 0).all()

    def test_important_feature_identified(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert len(tree.tree_.feature) == 1  # root only

    def test_nan_input_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.array([[np.nan], [1.0]]), np.array([0, 1]))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.ones((2, 2)))


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.score(X, y) > 0.99

    def test_deep_tree_overfits_smooth_curve(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(X.ravel() * 2)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=2).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_single_leaf_predicts_mean(self):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.array([1.0, 2, 3, 4, 5, 6, 7, 8])
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())


class TestRandomForestClassifier:
    def test_beats_single_stump(self, multiclass_data):
        X, y = multiclass_data
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, seed=0).fit(X, y)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert forest.score(X, y) > stump.score(X, y)

    def test_proba_shape_and_rows(self, multiclass_data):
        X, y = multiclass_data
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_rare_class_column_alignment(self, rng):
        """Bootstraps may miss a rare class; proba columns must still align."""
        X = rng.normal(size=(60, 3))
        y = np.array([0] * 55 + [2] * 4 + [7])
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (60, 3)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_deterministic_given_seed(self, binary_data):
        X, y = binary_data
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        assert (a == b).all()

    def test_importances_normalized(self, binary_data):
        X, y = binary_data
        forest = RandomForestClassifier(n_estimators=8, seed=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestRandomForestRegressor:
    def test_fits_interaction(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=15, max_depth=8, seed=0).fit(X, y)
        assert forest.score(X, y) > 0.6

    def test_prediction_within_target_range(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        pred = forest.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestGradientBoosting:
    def test_regressor_improves_with_stages(self, regression_data):
        X, y = regression_data
        small = GradientBoostingRegressor(n_estimators=2, seed=0).fit(X, y)
        large = GradientBoostingRegressor(n_estimators=40, seed=0).fit(X, y)
        assert large.score(X, y) > small.score(X, y)

    def test_binary_classifier(self, binary_data):
        X, y = binary_data
        model = GradientBoostingClassifier(n_estimators=25, seed=0).fit(X, y)
        assert model.score(X, y) > 0.85
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multiclass_classifier(self, multiclass_data):
        X, y = multiclass_data
        model = GradientBoostingClassifier(n_estimators=15, seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert model.score(X, y) > 0.6

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.ones((5, 2)), np.zeros(5))

    def test_importances_available(self, binary_data):
        X, y = binary_data
        model = GradientBoostingClassifier(n_estimators=5, seed=0).fit(X, y)
        assert model.feature_importances_.shape == (X.shape[1],)

    def test_subsample_regressor(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=10, subsample=0.5, seed=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()
