"""Tests for mutual-information estimators and the downstream oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.evaluation import DownstreamEvaluator, default_metric_for_task, default_model_for_task
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import f1_score, one_minus_rae, roc_auc_score
from repro.ml.mutual_info import (
    discrete_mutual_info,
    mutual_info_features,
    mutual_info_matrix,
    mutual_info_with_target,
)


class TestDiscreteMI:
    def test_identical_variables_equal_entropy(self):
        x = np.array([0, 0, 1, 1, 2, 2])
        mi = discrete_mutual_info(x, x)
        entropy = -np.sum(np.full(3, 1 / 3) * np.log(1 / 3))
        assert mi == pytest.approx(entropy)

    def test_independent_variables_near_zero(self, rng):
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert discrete_mutual_info(a, b) < 0.01

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, 500)
        b = (a + rng.integers(0, 2, 500)) % 3
        assert discrete_mutual_info(a, b) == pytest.approx(discrete_mutual_info(b, a))

    def test_non_negative(self, rng):
        for _ in range(10):
            a = rng.integers(0, 5, 100)
            b = rng.integers(0, 5, 100)
            assert discrete_mutual_info(a, b) >= 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            discrete_mutual_info([0, 1], [0, 1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            discrete_mutual_info([], [])


class TestMIWithTarget:
    def test_informative_feature_ranks_first(self, rng):
        X = rng.normal(size=(600, 3))
        y = (X[:, 1] > 0).astype(int)
        mi = mutual_info_with_target(X, y, task="classification")
        assert np.argmax(mi) == 1

    def test_regression_target_binned(self, rng):
        X = rng.normal(size=(500, 2))
        y = X[:, 0] * 3.0
        mi = mutual_info_with_target(X, y, task="regression")
        assert mi[0] > mi[1]

    def test_feature_pair_mi(self, rng):
        a = rng.normal(size=400)
        b = a + 0.01 * rng.normal(size=400)
        c = rng.normal(size=400)
        assert mutual_info_features(a, b) > mutual_info_features(a, c)

    def test_matrix_symmetric_with_positive_diagonal(self, rng):
        X = rng.normal(size=(200, 4))
        M = mutual_info_matrix(X)
        assert np.allclose(M, M.T)
        assert (np.diag(M) > 0).all()


class TestDownstreamEvaluator:
    def test_classification_uses_f1(self):
        assert default_metric_for_task("classification") is f1_score
        assert default_metric_for_task("regression") is one_minus_rae
        assert default_metric_for_task("detection") is roc_auc_score

    def test_default_models(self):
        assert isinstance(default_model_for_task("classification"), RandomForestClassifier)
        assert isinstance(default_model_for_task("regression"), RandomForestRegressor)
        assert isinstance(default_model_for_task("detection"), RandomForestClassifier)

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            DownstreamEvaluator("ranking")
        with pytest.raises(ValueError):
            default_model_for_task("ranking")

    def test_counters_accumulate(self, binary_data):
        X, y = binary_data
        ev = DownstreamEvaluator("classification", n_splits=3)
        ev(X, y)
        ev(X, y)
        assert ev.n_calls == 2
        assert ev.total_time > 0
        ev.reset_counters()
        assert ev.n_calls == 0 and ev.total_time == 0.0

    def test_good_features_score_higher(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        ev = DownstreamEvaluator("classification", n_splits=3)
        base = ev(X, y)
        engineered = ev(np.column_stack([X, X[:, 0] * X[:, 1]]), y)
        assert engineered > base

    def test_detection_returns_auc_range(self, detection_data):
        X, y = detection_data
        ev = DownstreamEvaluator("detection", n_splits=3)
        score = ev(X, y)
        assert 0.5 < score <= 1.0

    def test_evaluate_with_model(self, binary_data):
        X, y = binary_data
        ev = DownstreamEvaluator("classification", n_splits=3)
        score = ev.evaluate_with_model(X, y, LogisticRegression())
        assert 0.0 <= score <= 1.0

    def test_handles_nan_input(self, binary_data):
        X, y = binary_data
        X = X.copy()
        X[0, 0] = np.nan
        ev = DownstreamEvaluator("classification", n_splits=3)
        assert np.isfinite(ev(X, y))

    def test_invalid_splits_raises(self):
        with pytest.raises(ValueError):
            DownstreamEvaluator("classification", n_splits=1)
