"""Tests for scalers, clipping, encoders and discretization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.preprocessing import (
    KBinsDiscretizer,
    LabelEncoder,
    MinMaxScaler,
    RobustClipper,
    StandardScaler,
    sanitize_features,
)


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(3.0, 2.0, size=(500, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_no_nan(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 4))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.normal(size=(100, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0

    def test_custom_range(self, rng):
        X = rng.normal(size=(100, 2))
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0) and Z.max() == pytest.approx(1.0)


class TestRobustClipper:
    def test_replaces_nan_and_inf(self):
        X = np.array([[1.0, np.nan], [np.inf, 2.0], [3.0, -np.inf], [4.0, 5.0]])
        Z = RobustClipper().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_clips_outliers(self, rng):
        X = rng.normal(size=(1000, 1))
        X[0, 0] = 1e9
        Z = RobustClipper(quantile=0.01).fit_transform(X)
        assert Z[0, 0] < 1e3

    def test_all_nan_column(self):
        X = np.full((5, 1), np.nan)
        Z = RobustClipper().fit_transform(X)
        assert np.allclose(Z, 0.0)


class TestSanitizeFeatures:
    def test_nan_replaced_by_median(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        Z = sanitize_features(X)
        assert Z[1, 0] == pytest.approx(2.0)

    def test_inf_clipped(self):
        Z = sanitize_features(np.array([[np.inf], [1.0]]))
        assert np.isfinite(Z).all()

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=20),
            elements=st.floats(allow_nan=True, allow_infinity=True, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_always_finite(self, X):
        assert np.isfinite(sanitize_features(X)).all()


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert codes.tolist() == [1, 0, 2, 0]
        assert (enc.inverse_transform(codes) == y).all()

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(np.array([0, 1]))
        with pytest.raises(ValueError):
            enc.transform(np.array([2]))


class TestKBinsDiscretizer:
    def test_codes_in_range(self, rng):
        X = rng.normal(size=(200, 3))
        codes = KBinsDiscretizer(n_bins=8).fit_transform(X)
        assert codes.min() >= 0 and codes.max() < 8

    def test_constant_column_single_bin(self):
        X = np.ones((20, 1))
        codes = KBinsDiscretizer(n_bins=4).fit_transform(X)
        assert len(np.unique(codes)) == 1

    def test_quantile_balance(self, rng):
        X = rng.random((1000, 1))
        codes = KBinsDiscretizer(n_bins=4).fit_transform(X).ravel()
        counts = np.bincount(codes)
        assert counts.min() > 150  # roughly balanced bins

    def test_invalid_bins_raises(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(n_bins=1)
