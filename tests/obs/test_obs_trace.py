"""Tracer: span nesting, exception safety, JSONL schema round-trip."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    load_trace,
    merge_trace_metrics,
)


class TestSpanNesting:
    def test_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["inner"]["parent"] == outer
        assert "parent" not in spans["outer"]
        assert spans["outer"]["dur"] >= spans["inner"]["dur"]

    def test_exception_tags_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        spans = {s["name"]: s for s in tracer.spans}
        # Both spans closed (stack fully unwound) and the failing one is
        # tagged; the outer context manager re-tags itself on the way out.
        assert spans["inner"]["attrs"]["error"] == "RuntimeError"
        assert spans["outer"]["attrs"]["error"] == "RuntimeError"
        assert tracer._stack() == []
        # A fresh span after the exception is parentless, not a phantom child.
        with tracer.span("after"):
            pass
        assert "parent" not in [s for s in tracer.spans if s["name"] == "after"][0]

    def test_end_closes_down_to_target(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("mid")
        tracer.begin("leaf")
        tracer.end(outer)  # closes leaf, mid, then outer
        assert [s["name"] for s in tracer.spans] == ["leaf", "mid", "outer"]
        assert tracer._stack() == []

    def test_end_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.end()
        tracer.begin("open")
        with pytest.raises(RuntimeError):
            tracer.end(999)

    def test_record_span_parents_to_open_span(self):
        tracer = Tracer()
        with tracer.span("step") as sid:
            child = tracer.record_span("evaluation", 0.25, kind="step")
        record = [s for s in tracer.spans if s["id"] == child][0]
        assert record["parent"] == sid
        assert record["dur"] == 0.25
        orphan = tracer.record_span("evaluation", 0.1)
        assert "parent" not in [s for s in tracer.spans if s["id"] == orphan][0]

    def test_span_ring_is_bounded(self):
        tracer = Tracer(max_spans=8)
        for i in range(50):
            tracer.record_span("s", 0.001, i=i)
        assert len(tracer.spans) == 8
        assert [s["attrs"]["i"] for s in tracer.spans] == list(range(42, 50))
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestJsonlRoundTrip:
    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with Tracer(path=str(path), meta={"run": "unit"}) as tracer:
            with tracer.span("search", task="classification"):
                tracer.record_span("evaluation", 0.5, kind="base_score")
            tracer.count("search.steps", 3)
            tracer.gauge("search.best_score", 0.9)
            tracer.observe("search.step_seconds", 0.02)
            tracer.annotate(best_score=0.9)

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == TRACE_SCHEMA_VERSION
        assert lines[0]["run"] == "unit"
        assert {"repro_version", "numpy_version", "n_cores", "platform"} <= set(lines[0])
        assert lines[-1]["type"] == "end"

        trace = load_trace(str(path))
        assert trace.meta["run"] == "unit"
        assert trace.elapsed is not None
        assert [s["name"] for s in trace.spans] == ["evaluation", "search"]
        assert trace.spans_named("search")[0]["attrs"]["task"] == "classification"
        assert trace.bucket_totals()["evaluation"] == 0.5
        assert trace.annotations == [{"type": "annotation", "best_score": 0.9}]
        assert trace.metrics.counter("search.steps").value == 3
        assert trace.metrics.gauge("search.best_score").value == 0.9
        hist = trace.metrics.get("search.step_seconds")
        assert hist.count == 1 and hist.max == 0.02

    def test_file_receives_spans_evicted_from_ring(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path=str(path), max_spans=2) as tracer:
            for i in range(10):
                tracer.record_span("s", 0.001, i=i)
        trace = load_trace(str(path))
        assert len(trace.spans) == 10

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path=str(path))
        tracer.close()
        assert tracer.closed
        tracer.close()
        content = path.read_text()
        assert content.count('"type":"end"') == 1

    def test_load_rejects_foreign_files(self, tmp_path):
        not_jsonl = tmp_path / "a.jsonl"
        not_jsonl.write_text("definitely not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            load_trace(str(not_jsonl))

        no_header = tmp_path / "b.jsonl"
        no_header.write_text('{"type":"span","id":1,"name":"x","t":0,"dur":1}\n')
        with pytest.raises(ValueError, match="no meta header"):
            load_trace(str(no_header))

        empty = tmp_path / "c.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(empty))

        future = tmp_path / "d.jsonl"
        future.write_text('{"type":"meta","schema":999}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(str(future))


class TestMergeTraces:
    def test_sweep_level_aggregation(self, tmp_path):
        paths = []
        for worker in range(3):
            path = tmp_path / f"worker{worker}.jsonl"
            with Tracer(path=str(path)) as tracer:
                tracer.count("search.steps", 4)
                tracer.observe("search.step_seconds", 0.01 * (worker + 1))
                tracer.gauge("search.best_score", 0.5 + 0.1 * worker)
            paths.append(str(path))
        merged = merge_trace_metrics([load_trace(p) for p in paths])
        assert merged.counter("search.steps").value == 12
        hist = merged.get("search.step_seconds")
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.06)
        # Gauges keep the last trace's value.
        assert merged.gauge("search.best_score").value == pytest.approx(0.7)
