"""TracingCallback on a real search: structure, exactness, aggregation.

The trajectory-identity side of the guarantee lives with the goldens
(``tests/test_determinism_golden.py::TestTracingGolden``); here we pin the
*trace* side — what a traced run writes and how multiple traces merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.obs import (
    BUCKET_SPAN_NAMES,
    TracingCallback,
    load_trace,
    merge_trace_metrics,
)

CONFIG = dict(
    episodes=2,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=2,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=4,
    max_clusters=3,
    mi_max_rows=64,
    seed=11,
)


def _problem() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(23)
    X = rng.normal(size=(80, 4))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.trace.jsonl"
    X, y = _problem()
    result = api.search(
        X, y, "classification", callbacks=[TracingCallback(path=str(path))], **CONFIG
    )
    return result, load_trace(str(path))


class TestTracedSearch:
    def test_bucket_totals_equal_result_time(self, traced_run):
        result, trace = traced_run
        buckets = trace.bucket_totals()
        assert buckets["optimization"] == pytest.approx(
            result.time.optimization, abs=1e-9
        )
        assert buckets["estimation"] == pytest.approx(result.time.estimation, abs=1e-9)
        assert buckets["evaluation"] == pytest.approx(result.time.evaluation, abs=1e-9)

    def test_span_tree_structure(self, traced_run):
        result, trace = traced_run
        assert len(trace.spans_named("search")) == 1
        assert len(trace.spans_named("episode")) == CONFIG["episodes"]
        steps = trace.spans_named("step")
        assert len(steps) == len(result.history)
        episode_ids = {s["id"] for s in trace.spans_named("episode")}
        step_ids = set()
        for step, record in zip(steps, result.history):
            assert step["parent"] in episode_ids
            assert step["attrs"]["op"] == record.op_name
            assert step["attrs"]["score"] == record.score
            step_ids.add(step["id"])
        # Every step's bucket children hang off that step.
        step_children = [
            s
            for s in trace.spans
            if s["name"] in BUCKET_SPAN_NAMES and s.get("attrs", {}).get("kind") == "step"
        ]
        assert step_children
        assert all(s["parent"] in step_ids for s in step_children)

    def test_search_metrics(self, traced_run):
        result, trace = traced_run
        assert trace.metrics.counter("search.steps").value == len(result.history)
        assert trace.metrics.counter("search.sessions").value == 1
        assert trace.metrics.get("search.step_seconds").count == len(result.history)
        assert trace.metrics.gauge("search.best_score").value == pytest.approx(
            result.history[-1].best_score_so_far
        )
        engine_metrics = [
            m for m in trace.metrics if m.name == "eval.calls" and "engine" in m.labels
        ]
        assert engine_metrics, "evaluator never reported its engine label"
        # The base-score evaluation runs before on_search_start attaches the
        # tracer to the evaluator, so it is one short of the session's count
        # (its time still lands in the trace via the base_score span).
        assert sum(m.value for m in engine_metrics) == result.n_downstream_calls - 1

    def test_annotations_carry_run_summary(self, traced_run):
        result, trace = traced_run
        (annotation,) = trace.annotations
        assert annotation["best_score"] == result.best_score
        assert annotation["n_steps"] == len(result.history)


class TestSweepAggregation:
    def test_merge_across_worker_traces(self, tmp_path):
        X, y = _problem()
        traces = []
        for seed in (11, 12):
            path = tmp_path / f"seed{seed}.trace.jsonl"
            api.search(
                X,
                y,
                "classification",
                callbacks=[TracingCallback(path=str(path))],
                **dict(CONFIG, seed=seed),
            )
            traces.append(load_trace(str(path)))
        merged = merge_trace_metrics(traces)
        per_run = [t.metrics.counter("search.steps").value for t in traces]
        assert merged.counter("search.steps").value == sum(per_run)
        assert merged.counter("search.sessions").value == 2
        hist = merged.get("search.step_seconds")
        assert hist.count == sum(per_run)
