"""Metric primitives: quantile correctness, monotonicity, rendering, merge."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("requests")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_merge_sums(self):
        a, b = Counter("n"), Counter("n")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_summary_round_trip(self):
        a = Counter("n")
        a.inc(5)
        b = Counter("n")
        b.load_summary(a.summary())
        assert b.value == 5


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4)
        g.add(-1)
        assert g.value == 3

    def test_merge_last_writer_wins(self):
        a, b = Gauge("depth"), Gauge("depth")
        a.set(1)
        b.set(9)
        a.merge(b)
        assert a.value == 9


class TestHistogramQuantiles:
    def test_exact_stats(self):
        h = Histogram("lat", bounds=(1, 2, 4, 8))
        for v in (0.5, 1.5, 3.0, 3.5, 7.0, 20.0):
            h.observe(v)
        assert h.count == 6
        assert h.sum == pytest.approx(35.5)
        assert h.min == 0.5
        assert h.max == 20.0
        assert h.mean == pytest.approx(35.5 / 6)

    def test_quantile_error_bounded_by_bucket_width(self):
        # 1000 uniform values in [0, 10) against unit-width buckets: every
        # interpolated quantile must land within one bucket of the truth.
        h = Histogram("u", bounds=tuple(range(1, 11)))
        values = [i * 10.0 / 1000.0 for i in range(1000)]
        for v in values:
            h.observe(v)
        for q in (0.1, 0.25, 0.5, 0.9, 0.99):
            exact = values[int(q * len(values)) - 1]
            assert abs(h.quantile(q) - exact) <= 1.0, (q, h.quantile(q), exact)

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram("one", bounds=(1.0, 10.0))
        h.observe(5.0)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) == 5.0

    def test_empty_histogram(self):
        h = Histogram("empty")
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.min == 0.0 and h.max == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2, 1))
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_summary_round_trip(self):
        a = Histogram("lat", bounds=(1, 2, 4))
        for v in (0.5, 1.5, 9.0):
            a.observe(v)
        payload = a.summary()
        b = Histogram("lat", bounds=(1, 2, 4))
        b.load_summary(payload)
        assert b.count == a.count
        assert b.sum == a.sum
        assert b.min == a.min and b.max == a.max
        assert b.quantile(0.5) == a.quantile(0.5)

    def test_load_summary_bounds_mismatch(self):
        a = Histogram("lat", bounds=(1, 2))
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1, 3)).load_summary(a.summary())

    def test_merge(self):
        a = Histogram("lat", bounds=(1, 2))
        b = Histogram("lat", bounds=(1, 2))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.min == 0.5 and a.max == 5.0
        with pytest.raises(ValueError):
            a.merge(Histogram("lat", bounds=(1, 3)))


class TestRegistry:
    def test_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", labels={"kind": "a"})
        c2 = reg.counter("hits", labels={"kind": "a"})
        c3 = reg.counter("hits", labels={"kind": "b"})
        assert c1 is c2 and c1 is not c3
        assert len(reg) == 2

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_default_latency_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.bounds == DEFAULT_LATENCY_BOUNDS

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.histogram("lat", bounds=(1, 2)).observe(0.5)
        a.merge(b)
        assert a.counter("n").value == 3
        assert a.histogram("lat", bounds=(1, 2)).count == 1

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("n", labels={"k": "v"}).inc(2)
        snap = reg.snapshot()
        assert snap['n{k="v"}'] == {"kind": "counter", "value": 2.0}


class TestPrometheusRender:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("requests", help="total requests").inc(3)
        reg.gauge("depth").set(2)
        text = reg.render_prometheus()
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1, 2))
        for v in (0.5, 0.7, 1.5, 9.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="2"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 11.7" in text

    def test_labels_render(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"kind": "a"}).inc()
        assert 'hits_total{kind="a"} 1' in reg.render_prometheus()
