"""Failure-injection and edge-case tests across the stack.

These exercise the paths a long RL exploration will eventually hit: constant
columns, explosive operation chains, degenerate datasets, near-empty buffers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FastFT, FastFTConfig, FeatureSpace, cluster_features, describe_matrix
from repro.core.novelty import NoveltyEstimator
from repro.core.operations import OPERATION_NAMES, get_operation
from repro.core.predictor import PerformancePredictor
from repro.core.tokens import TokenVocabulary
from repro.ml.base import check_array, check_X_y
from repro.ml.evaluation import DownstreamEvaluator
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def _tiny_cfg(**over):
    base = dict(
        episodes=2, steps_per_episode=2, cold_start_episodes=1,
        retrain_every_episodes=1, component_epochs=1, cv_splits=3,
        rf_estimators=3, max_clusters=3, mi_max_rows=64, seed=0,
    )
    base.update(over)
    return FastFTConfig(**base)


class TestInputValidation:
    def test_check_X_y_shapes(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            check_X_y(np.ones((0, 2)), np.ones(0))
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2, 2)), np.ones(3))

    def test_check_X_y_promotes_1d(self):
        X, y = check_X_y(np.ones(5), np.zeros(5))
        assert X.shape == (5, 1)

    def test_check_array_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array(np.array([[np.nan]]))


class TestDegenerateData:
    def test_constant_column_dataset(self):
        """Constant columns break naive MI/variance code paths."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 4))
        X[:, 2] = 5.0  # constant
        y = (X[:, 0] > 0).astype(int)
        result = FastFT(_tiny_cfg()).fit(X, y, task="classification")
        assert np.isfinite(result.best_score)

    def test_two_feature_dataset(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        result = FastFT(_tiny_cfg()).fit(X, y, task="classification")
        assert np.isfinite(result.best_score)

    def test_single_feature_dataset(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(90, 1))
        y = (X[:, 0] ** 2 > 0.5).astype(int)
        result = FastFT(_tiny_cfg()).fit(X, y, task="classification")
        assert np.isfinite(result.best_score)

    def test_imbalanced_99_to_1(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 3))
        y = np.zeros(200, dtype=int)
        y[:3] = 1
        X[:3] += 4.0
        score = DownstreamEvaluator("detection", n_splits=3)(X, y)
        assert 0.0 <= score <= 1.0

    def test_duplicated_columns(self):
        rng = np.random.default_rng(4)
        col = rng.normal(size=150)
        X = np.column_stack([col, col, col])
        y = (col > 0).astype(int)
        clusters = cluster_features(X, y)
        assert len(clusters) >= 1
        result = FastFT(_tiny_cfg()).fit(X, y, task="classification")
        assert np.isfinite(result.best_score)


class TestExplosiveChains:
    def test_exp_of_exp_of_exp_stays_finite(self, rng):
        X = rng.normal(size=(50, 2)) * 10
        fs = FeatureSpace(X)
        fid = fs.live_ids[0]
        for _ in range(5):
            fid = fs.apply_unary("exp", [fid])[0]
        assert np.isfinite(fs.matrix()).all()
        assert np.isfinite(describe_matrix(fs.matrix())).all()

    def test_reciprocal_of_tiny_values(self, rng):
        X = rng.normal(size=(50, 1)) * 1e-12
        out = get_operation("reciprocal")(X[:, 0])
        assert np.isfinite(out).all()

    def test_divide_chain_plan_reapplies(self, rng):
        X = rng.normal(size=(40, 2))
        fs = FeatureSpace(X)
        fid = fs.apply_binary("divide", [0], [1])[0]
        for _ in range(3):
            fid = fs.apply_binary("divide", [fid], [1])[0]
        plan = fs.snapshot()
        assert np.isfinite(plan.apply(rng.normal(size=(30, 2)) * 1e-9)).all()

    def test_deep_tree_on_extreme_feature_values(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([rng.normal(size=100) * 1e12, rng.normal(size=100)])
        y = (X[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9


class TestComponentEdgeCases:
    def test_predictor_on_minimal_sequence(self):
        vocab = TokenVocabulary(OPERATION_NAMES)
        pp = PerformancePredictor(len(vocab), seed=0)
        seq = vocab.finalize([])  # just SOS/EOS
        assert np.isfinite(pp.predict(seq))

    def test_novelty_on_minimal_sequence(self):
        vocab = TokenVocabulary(OPERATION_NAMES)
        ne = NoveltyEstimator(len(vocab), embed_dim=8, hidden_dim=8, num_layers=1, seed=0)
        seq = vocab.finalize([])
        assert ne.score(seq) >= 0

    def test_predictor_single_record_fit(self):
        vocab = TokenVocabulary(OPERATION_NAMES)
        pp = PerformancePredictor(len(vocab), embed_dim=8, hidden_dim=8, num_layers=1, seed=0)
        seq = vocab.finalize([vocab.op_token("add")])
        loss = pp.fit([seq], np.array([0.5]), epochs=2)
        assert np.isfinite(loss)

    def test_forest_single_sample_per_class(self):
        X = np.array([[0.0, 1.0], [1.0, 0.0]])
        y = np.array([0, 1])
        model = RandomForestClassifier(n_estimators=3, seed=0).fit(X, y)
        assert model.predict(X).shape == (2,)


class TestEngineResilience:
    def test_zero_cold_start_with_pp_disabled(self):
        """cold_start_episodes=0 is valid when the predictor is off."""
        rng = np.random.default_rng(6)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        cfg = _tiny_cfg(cold_start_episodes=0, use_performance_predictor=False)
        result = FastFT(cfg).fit(X, y, task="classification")
        assert all(r.is_real for r in result.history)

    def test_memory_size_one(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        result = FastFT(_tiny_cfg(memory_size=1, replay_batch_size=1)).fit(
            X, y, task="classification"
        )
        assert np.isfinite(result.best_score)

    def test_steps_longer_than_sequence_cap(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(90, 3))
        y = (X[:, 0] > 0).astype(int)
        result = FastFT(_tiny_cfg(max_seq_len=12, steps_per_episode=4)).fit(
            X, y, task="classification"
        )
        assert np.isfinite(result.best_score)

    def test_regression_with_constant_target_segment(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(80, 3))
        y = np.concatenate([np.zeros(40), X[40:, 0]])
        result = FastFT(_tiny_cfg()).fit(X, y, task="regression")
        assert np.isfinite(result.best_score)
