"""Tests for FastFTResult.save / FastFTResult.load round-trips."""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.core.engine import FastFT, FastFTResult


@pytest.fixture(scope="module")
def run_result():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(120, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    cfg = FastFTConfig(
        episodes=2, steps_per_episode=2, cold_start_episodes=1,
        retrain_every_episodes=1, component_epochs=1, cv_splits=3,
        rf_estimators=3, max_clusters=3, mi_max_rows=64, seed=0,
    )
    return FastFT(cfg).fit(X, y, task="classification"), X


class TestResultRoundtrip:
    def test_scores_and_task_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.base_score == result.base_score
        assert restored.best_score == result.best_score
        assert restored.task == "classification"
        assert restored.n_downstream_calls == result.n_downstream_calls

    def test_plan_transform_identical(self, run_result, tmp_path):
        result, X = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert np.allclose(restored.transform(X), result.transform(X))
        assert restored.expressions() == result.expressions()

    def test_history_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert len(restored.history) == len(result.history)
        assert restored.history[0].op_name == result.history[0].op_name
        assert restored.history[-1].reward == pytest.approx(result.history[-1].reward)

    def test_config_tuple_fields_restored(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.config.predictor_head_dims == (16, 1)
        assert restored.config.novelty_head_dims == (16, 4, 1)
        assert isinstance(restored.config.predictor_head_dims, tuple)

    def test_time_breakdown_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.time.overall == pytest.approx(result.time.overall)

    def test_step_records_roundtrip_exactly(self, run_result, tmp_path):
        """Every StepRecord field — including sequence_tokens — survives."""
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        for original, loaded in zip(result.history, restored.history):
            assert asdict(loaded) == asdict(original)
        assert any(r.sequence_tokens for r in restored.history)
        assert all(
            isinstance(t, int) for r in restored.history for t in r.sequence_tokens
        )


class TestConfigVariantRoundtrip:
    @staticmethod
    def _fit_with(config_overrides, tmp_path, name):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(90, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        cfg = FastFTConfig(
            episodes=1, steps_per_episode=2, cold_start_episodes=1,
            retrain_every_episodes=1, component_epochs=1, cv_splits=3,
            rf_estimators=3, max_clusters=3, mi_max_rows=64, seed=0,
            **config_overrides,
        )
        result = FastFT(cfg).fit(X, y, task="classification")
        path = tmp_path / f"{name}.json"
        result.save(str(path))
        return result, FastFTResult.load(str(path))

    def test_cluster_threshold_auto_roundtrip(self, tmp_path):
        result, restored = self._fit_with({"cluster_threshold": "auto"}, tmp_path, "auto")
        assert restored.config.cluster_threshold == "auto"
        assert asdict(restored.config) == asdict(result.config)

    def test_cluster_threshold_float_roundtrip(self, tmp_path):
        result, restored = self._fit_with({"cluster_threshold": 0.75}, tmp_path, "float")
        assert restored.config.cluster_threshold == 0.75
        assert isinstance(restored.config.cluster_threshold, float)

    def test_custom_head_dims_roundtrip(self, tmp_path):
        overrides = {"predictor_head_dims": (8, 4, 1), "novelty_head_dims": (8, 1)}
        _, restored = self._fit_with(overrides, tmp_path, "heads")
        assert restored.config.predictor_head_dims == (8, 4, 1)
        assert restored.config.novelty_head_dims == (8, 1)
        assert isinstance(restored.config.predictor_head_dims, tuple)
        assert isinstance(restored.config.novelty_head_dims, tuple)
