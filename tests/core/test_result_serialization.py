"""Tests for FastFTResult.save / FastFTResult.load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.core.engine import FastFT, FastFTResult


@pytest.fixture(scope="module")
def run_result():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(120, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    cfg = FastFTConfig(
        episodes=2, steps_per_episode=2, cold_start_episodes=1,
        retrain_every_episodes=1, component_epochs=1, cv_splits=3,
        rf_estimators=3, max_clusters=3, mi_max_rows=64, seed=0,
    )
    return FastFT(cfg).fit(X, y, task="classification"), X


class TestResultRoundtrip:
    def test_scores_and_task_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.base_score == result.base_score
        assert restored.best_score == result.best_score
        assert restored.task == "classification"
        assert restored.n_downstream_calls == result.n_downstream_calls

    def test_plan_transform_identical(self, run_result, tmp_path):
        result, X = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert np.allclose(restored.transform(X), result.transform(X))
        assert restored.expressions() == result.expressions()

    def test_history_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert len(restored.history) == len(result.history)
        assert restored.history[0].op_name == result.history[0].op_name
        assert restored.history[-1].reward == pytest.approx(result.history[-1].reward)

    def test_config_tuple_fields_restored(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.config.predictor_head_dims == (16, 1)
        assert restored.config.novelty_head_dims == (16, 4, 1)
        assert isinstance(restored.config.predictor_head_dims, tuple)

    def test_time_breakdown_preserved(self, run_result, tmp_path):
        result, _ = run_result
        path = tmp_path / "run.json"
        result.save(str(path))
        restored = FastFTResult.load(str(path))
        assert restored.time.overall == pytest.approx(result.time.overall)
