"""Tests for SearchSession: stepping, callbacks, checkpoint/resume determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Checkpointer,
    EarlyStopping,
    FastFT,
    FastFTConfig,
    HistoryCollector,
    SearchSession,
    TimeBudget,
    VerboseLogger,
)
from repro.core.callbacks import Callback


def tiny_config(**overrides) -> FastFTConfig:
    base = dict(
        episodes=3,
        steps_per_episode=3,
        cold_start_episodes=1,
        retrain_every_episodes=1,
        component_epochs=2,
        trigger_warmup=2,
        cv_splits=3,
        rf_estimators=3,
        max_clusters=3,
        mi_max_rows=64,
        seed=0,
    )
    base.update(overrides)
    return FastFTConfig(**base)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(140, 5))
    y = (X[:, 0] * X[:, 1] + 0.3 * X[:, 2] > 0).astype(int)
    return X, y


def deterministic_history(result):
    """Step history minus wall-clock timing fields."""
    return [r.deterministic_dict() for r in result.history]


class TestStepping:
    def test_iterator_protocol(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        records = list(session)
        assert len(records) == session.total_steps == 9
        assert session.finished and session.done
        assert [r.global_step for r in records] == list(range(9))

    def test_step_after_finish_raises(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config(episodes=1))
        session.run()
        with pytest.raises(RuntimeError):
            session.step()

    def test_start_is_idempotent(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        session.start()
        base = session.base_score
        session.start()
        assert session.base_score == base
        assert session.n_downstream_calls == 1

    def test_run_until_step_count(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        partial = session.run(until=4)
        assert session.global_step == 4
        assert not session.finished
        assert len(partial.history) == 4
        full = session.run()
        assert session.finished
        assert len(full.history) == 9

    def test_run_until_predicate(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        session.run(until=lambda s: s.global_step >= 2)
        assert session.global_step == 2

    def test_unknown_task_raises(self, problem):
        X, y = problem
        with pytest.raises(ValueError):
            SearchSession(X, y, "ranking", config=tiny_config())

    def test_properties_before_start(self, problem):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        assert not session.started
        assert session.global_step == 0
        assert session.history == []
        assert session.n_downstream_calls == 0
        with pytest.raises(RuntimeError):
            _ = session.best_score

    def test_request_stop_mid_run(self, problem):
        X, y = problem

        class StopAtThree(Callback):
            def on_step(self, session, record):
                if record.global_step == 2:
                    session.request_stop("enough")

        session = SearchSession(
            X, y, "classification", config=tiny_config(), callbacks=[StopAtThree()]
        )
        result = session.run()
        assert session.stop_requested and session.done and not session.finished
        assert session.stop_reason == "enough"
        assert len(result.history) == 3
        assert result.best_score >= result.base_score


class TestFitEquivalence:
    def test_session_matches_blocking_fit(self, problem):
        """FastFT.fit is a facade: identical decisions, scores and history."""
        X, y = problem
        fit_result = FastFT(tiny_config()).fit(X, y, task="classification")
        session = SearchSession(X, y, "classification", config=tiny_config())
        for _ in session:
            pass
        session_result = session.result()
        assert fit_result.best_score == session_result.best_score
        assert fit_result.base_score == session_result.base_score
        assert fit_result.n_downstream_calls == session_result.n_downstream_calls
        assert fit_result.plan.expressions() == session_result.plan.expressions()
        assert deterministic_history(fit_result) == deterministic_history(session_result)


class TestCheckpointResume:
    @pytest.mark.parametrize("interrupt_at", [2, 4, 8])
    def test_resume_is_bit_identical(self, problem, tmp_path, interrupt_at):
        """A checkpoint/resume cycle (even mid-episode) must reproduce the
        uninterrupted run exactly: best score, plan, and step history."""
        X, y = problem
        uninterrupted = SearchSession(X, y, "classification", config=tiny_config()).run()

        session = SearchSession(X, y, "classification", config=tiny_config())
        for _ in range(interrupt_at):
            session.step()
        path = str(tmp_path / "mid.ckpt")
        session.checkpoint(path)
        del session

        resumed = SearchSession.resume(path)
        assert resumed.global_step == interrupt_at
        result = resumed.run()

        assert result.best_score == uninterrupted.best_score
        assert result.base_score == uninterrupted.base_score
        assert result.n_downstream_calls == uninterrupted.n_downstream_calls
        assert result.plan.expressions() == uninterrupted.plan.expressions()
        assert deterministic_history(result) == deterministic_history(uninterrupted)

    def test_checkpoint_before_start(self, problem, tmp_path):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        path = str(tmp_path / "fresh.ckpt")
        session.checkpoint(path)
        resumed = SearchSession.resume(path)
        assert not resumed.started
        result = resumed.run()
        reference = SearchSession(X, y, "classification", config=tiny_config()).run()
        assert result.best_score == reference.best_score
        assert deterministic_history(result) == deterministic_history(reference)

    def test_checkpoint_preserves_transform(self, problem, tmp_path):
        X, y = problem
        session = SearchSession(X, y, "classification", config=tiny_config())
        session.run(until=5)
        path = str(tmp_path / "t.ckpt")
        session.checkpoint(path)
        resumed = SearchSession.resume(path)
        a = session.result()
        b = resumed.result()
        np.testing.assert_array_equal(a.transform(X), b.transform(X))

    def test_resume_clears_stop_request(self, problem, tmp_path):
        """A budget-stopped checkpoint must actually continue on resume —
        the stop flag is a transient signal, not persistent state."""
        X, y = problem
        uninterrupted = SearchSession(X, y, "classification", config=tiny_config()).run()
        session = SearchSession(
            X,
            y,
            "classification",
            config=tiny_config(),
            callbacks=[TimeBudget(1e-9)],
        )
        session.run()
        assert session.stop_requested and not session.finished
        path = str(tmp_path / "stopped.ckpt")
        session.checkpoint(path)
        resumed = SearchSession.resume(path)
        assert not resumed.stop_requested and not resumed.done
        result = resumed.run()
        assert resumed.finished
        assert result.best_score == uninterrupted.best_score
        assert deterministic_history(result) == deterministic_history(uninterrupted)

    def test_resume_rejects_non_checkpoint(self, tmp_path):
        bogus = tmp_path / "bogus.pkl"
        import pickle

        with open(bogus, "wb") as fh:
            pickle.dump({"something": "else"}, fh)
        with pytest.raises(ValueError):
            SearchSession.resume(str(bogus))

    def test_resume_attaches_fresh_callbacks(self, problem, tmp_path):
        X, y = problem
        collector = HistoryCollector()
        session = SearchSession(
            X, y, "classification", config=tiny_config(), callbacks=[collector]
        )
        session.run(until=3)
        path = str(tmp_path / "cb.ckpt")
        session.checkpoint(path)
        new_collector = HistoryCollector()
        resumed = SearchSession.resume(path, callbacks=[new_collector])
        resumed.run()
        # The fresh collector sees only post-resume steps.
        assert len(new_collector.records) == resumed.total_steps - 3
        assert len(resumed.history) == resumed.total_steps


class TestCallbacks:
    def test_event_order_and_counts(self, problem):
        X, y = problem
        events: list[str] = []

        class Recorder(Callback):
            def on_search_start(self, session):
                events.append("search_start")

            def on_episode_start(self, session, episode):
                events.append(f"ep_start:{episode}")

            def on_step(self, session, record):
                events.append(f"step:{record.global_step}")

            def on_real_evaluation(self, session, record):
                events.append(f"real:{record.global_step}")

            def on_retrain(self, session, episode, stage):
                events.append(f"retrain:{episode}:{stage}")

            def on_episode_end(self, session, episode):
                events.append(f"ep_end:{episode}")

            def on_finish(self, session, result):
                events.append("finish")

        cfg = tiny_config(episodes=2, steps_per_episode=2)
        SearchSession(X, y, "classification", config=cfg, callbacks=[Recorder()]).run()
        assert events[0] == "search_start"
        assert events[-1] == "finish"
        assert events.count("ep_start:0") == events.count("ep_end:0") == 1
        assert "retrain:0:cold_start" in events
        assert "retrain:1:fine_tune" in events
        # Cold-start steps always hit the oracle.
        assert "real:0" in events and "real:1" in events
        # Retraining happens before the episode-end event.
        assert events.index("retrain:0:cold_start") < events.index("ep_end:0")

    def test_history_collector(self, problem):
        X, y = problem
        collector = HistoryCollector()
        session = SearchSession(
            X, y, "classification", config=tiny_config(), callbacks=[collector]
        )
        result = session.run()
        assert [r.global_step for r in collector.records] == [
            r.global_step for r in result.history
        ]
        assert len(collector.episodes) == 3
        assert collector.episodes[-1]["best_score"] == result.best_score
        assert collector.n_real_evaluations == sum(r.is_real for r in result.history)
        assert collector.retrain_events[0] == (0, "cold_start")

    def test_time_budget_stops_early(self, problem):
        X, y = problem
        session = SearchSession(
            X,
            y,
            "classification",
            config=tiny_config(episodes=50),
            callbacks=[TimeBudget(1e-9)],
        )
        result = session.run()
        assert session.stop_requested
        assert "time budget" in session.stop_reason
        assert len(result.history) == 1  # stopped right after the first step

    def test_time_budget_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TimeBudget(0)

    def test_early_stopping(self, problem):
        X, y = problem
        # min_delta so large no improvement can ever clear it -> stops after
        # `patience` episodes beyond the first.
        stopper = EarlyStopping(patience=1, min_delta=100.0)
        session = SearchSession(
            X, y, "classification", config=tiny_config(episodes=50), callbacks=[stopper]
        )
        result = session.run()
        assert session.stop_requested
        assert len(result.history) == 2 * 3  # episodes 0 (baseline) + 1 (stale)

    def test_early_stopping_validates_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_checkpointer_writes_and_resumes(self, problem, tmp_path):
        X, y = problem
        path = str(tmp_path / "auto.ckpt")
        saver = Checkpointer(path, every_episodes=1)
        uninterrupted = SearchSession(X, y, "classification", config=tiny_config()).run()
        session = SearchSession(
            X, y, "classification", config=tiny_config(), callbacks=[saver]
        )
        session.run(until=6)  # exactly two full episodes -> checkpoint is fresh
        assert saver.n_checkpoints >= 1
        resumed = SearchSession.resume(path)
        result = resumed.run()
        assert result.best_score == uninterrupted.best_score
        assert deterministic_history(result) == deterministic_history(uninterrupted)

    def test_on_finish_fires_once_per_final_state(self, problem):
        X, y = problem
        finishes: list[int] = []

        class CountFinish(Callback):
            def on_finish(self, session, result):
                finishes.append(session.global_step)

        session = SearchSession(
            X,
            y,
            "classification",
            config=tiny_config(episodes=1),
            callbacks=[CountFinish()],
        )
        session.run()
        session.run()  # running an already-done session must not re-notify
        session.result()
        assert finishes == [session.total_steps]

    def test_verbose_config_adds_logger(self, problem, capsys):
        X, y = problem
        cfg = tiny_config(episodes=1, verbose=True)
        session = SearchSession(X, y, "classification", config=cfg)
        assert any(isinstance(cb, VerboseLogger) for cb in session.callbacks.callbacks)
        session.run()
        out = capsys.readouterr().out
        assert "[FastFT] episode 0" in out
        assert "[FastFT] finished" in out
