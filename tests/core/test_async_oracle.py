"""AsyncOracle: pool semantics, failure degradation, session integration.

The determinism side of the async arm (pooled == inline reference, pinned
goldens) lives in tests/test_determinism_golden.py; this file covers the
mechanics — submission ordering, the cache front, and the satellite
failure contract: a crashed or hung evaluation degrades to the
predictor-estimated score with a warning, never a deadlock.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import api
from repro.core.async_oracle import AsyncOracle
from repro.ml.cache import EvaluationCache
from repro.ml.evaluation import DownstreamEvaluator


def _problem(n=60, d=3):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


def _evaluator():
    return DownstreamEvaluator(
        "classification",
        model=None,
        n_splits=2,
        seed=0,
    )


class _MeanEvaluator:
    """Cheap deterministic oracle with the n_calls accounting protocol."""

    def __init__(self) -> None:
        self.n_calls = 0

    def __call__(self, X, y):
        self.n_calls += 1
        return float(np.mean(X) + np.mean(y))


class _CrashInWorker:
    """Works in the creating process, raises in any other process.

    This is the satellite's "deliberately-crashing evaluator": the
    session's synchronous calls (base score, cold start) succeed, every
    pool-side evaluation crashes.
    """

    def __init__(self, evaluator) -> None:
        self._evaluator = evaluator
        self._pid = os.getpid()

    def __call__(self, X, y):
        if os.getpid() != self._pid:
            raise RuntimeError("deliberate worker crash")
        return self._evaluator(X, y)


class _HangInWorker:
    """Works in the creating process, hangs in any other process."""

    def __init__(self, evaluator, sleep=60.0) -> None:
        self._evaluator = evaluator
        self._sleep = sleep
        self._pid = os.getpid()

    def __call__(self, X, y):
        if os.getpid() != self._pid:
            time.sleep(self._sleep)
        return self._evaluator(X, y)


class _DieOnce:
    """Hard-kills its process on the first call, works after.

    Module-level (not nested in the test) so it pickles into the worker;
    a nested class would silently demote the oracle to the inline arm and
    ``os._exit`` would take the test runner down with it. The flag file
    makes "first call" survive the respawned worker process.
    """

    def __init__(self, flag_path) -> None:
        self._flag = flag_path

    def __call__(self, X, y):
        if os.getpid() == _MAIN_PID:
            # Never hard-exit the process that is running pytest.
            return 1.25
        if not os.path.exists(self._flag):
            with open(self._flag, "w") as fh:
                fh.write("x")
            os._exit(13)
        return 1.25


_MAIN_PID = os.getpid()


class TestSubmitDrain:
    def test_outcomes_in_submission_order_with_exact_scores(self):
        X, y = _problem()
        evaluator = _MeanEvaluator()
        matrices = [X + i for i in range(5)]
        expected = [float(np.mean(m) + np.mean(y)) for m in matrices]
        with AsyncOracle(evaluator, y, n_workers=2) as oracle:
            tickets = [oracle.submit(m) for m in matrices]
            outcomes = oracle.drain()
        assert [o.ticket for o in outcomes] == tickets
        assert all(o.ok for o in outcomes)
        assert [o.score for o in outcomes] == expected
        assert all(o.n_calls == 1 for o in outcomes)

    def test_inline_arm_matches_pool(self):
        X, y = _problem()
        matrices = [X * (i + 1) for i in range(4)]
        with AsyncOracle(_MeanEvaluator(), y, n_workers=0) as inline:
            for m in matrices:
                inline.submit(m)
            inline_out = [o.score for o in inline.drain()]
        with AsyncOracle(_MeanEvaluator(), y, n_workers=3) as pooled:
            for m in matrices:
                pooled.submit(m)
            pooled_out = [o.score for o in pooled.drain()]
        assert inline_out == pooled_out

    def test_drain_empty_is_noop_and_resubmission_works(self):
        X, y = _problem()
        with AsyncOracle(_MeanEvaluator(), y, n_workers=1) as oracle:
            assert oracle.drain() == []
            oracle.submit(X)
            first = oracle.drain()
            oracle.submit(X * 2.0)
            second = oracle.drain()
        assert len(first) == 1 and len(second) == 1
        assert first[0].ok and second[0].ok

    def test_unpicklable_evaluator_falls_back_to_inline(self):
        X, y = _problem()
        calls = []
        evaluator = lambda X, y: calls.append(1) or 0.5  # noqa: E731 - unpicklable on purpose
        with pytest.warns(RuntimeWarning, match="not picklable"):
            oracle = AsyncOracle(evaluator, y, n_workers=2)
        assert oracle.inline
        oracle.submit(X)
        (outcome,) = oracle.drain()
        assert outcome.ok and outcome.score == 0.5 and calls
        oracle.shutdown()


class TestCacheFront:
    def test_cache_hits_resolve_at_submit_and_scores_land_in_cache(self):
        X, y = _problem()
        cache = EvaluationCache()
        cached = cache.wrap(_evaluator())
        with AsyncOracle(cached, y, n_workers=2) as oracle:
            oracle.submit(X)
            (first,) = oracle.drain()
            assert first.ok and first.n_calls == 1
            # The landed score went into the cache, so the same matrix now
            # resolves at submission time without touching the pool.
            oracle.submit(X)
            (second,) = oracle.drain()
        assert second.ok and second.n_calls == 0
        assert repr(second.score) == repr(first.score)
        assert cache.hits >= 1

    def test_serial_cached_evaluator_agrees_with_pool_scores(self):
        X, y = _problem()
        reference = _evaluator()(X, y)
        cache = EvaluationCache()
        with AsyncOracle(cache.wrap(_evaluator()), y, n_workers=1) as oracle:
            oracle.submit(X)
            (outcome,) = oracle.drain()
        assert repr(outcome.score) == repr(float(reference))


class TestFailureDegradation:
    def test_crashing_evaluator_degrades_with_warning(self):
        X, y = _problem()
        evaluator = _CrashInWorker(_MeanEvaluator())
        with AsyncOracle(evaluator, y, n_workers=1, retries=1) as oracle:
            oracle.submit(X)
            with pytest.warns(RuntimeWarning, match="degrading"):
                (outcome,) = oracle.drain()
        assert not outcome.ok
        assert outcome.score is None
        assert outcome.attempts == 2  # first try + one retry
        assert "deliberate worker crash" in outcome.error

    def test_hung_evaluator_times_out_and_pool_survives(self):
        X, y = _problem()
        evaluator = _HangInWorker(_MeanEvaluator())
        with AsyncOracle(evaluator, y, n_workers=1, timeout=0.5, retries=0) as oracle:
            oracle.submit(X)
            start = time.monotonic()
            with pytest.warns(RuntimeWarning, match="degrading"):
                (outcome,) = oracle.drain()
            elapsed = time.monotonic() - start
        assert not outcome.ok
        assert elapsed < 30.0  # far below the worker's 60s sleep: no deadlock
        assert outcome.error == "timeout"

    def test_worker_death_is_retried_then_recovers(self, tmp_path):
        X, y = _problem()
        flag = str(tmp_path / "die_once.flag")
        with AsyncOracle(_DieOnce(flag), y, n_workers=1, retries=1) as oracle:
            if oracle.inline:
                pytest.skip("no fork-capable pool available")
            oracle.submit(X)
            (outcome,) = oracle.drain()
        assert outcome.ok
        assert outcome.score == 1.25
        assert outcome.attempts == 2


class TestSessionIntegration:
    CFG = dict(
        episodes=3,
        steps_per_episode=2,
        cold_start_episodes=1,
        retrain_every_episodes=1,
        component_epochs=2,
        trigger_warmup=2,
        cv_splits=2,
        rf_estimators=3,
        max_clusters=3,
        mi_max_rows=64,
        seed=3,
        oracle_mode="async",
        reconcile_every_k=2,
    )

    def test_crashing_pool_degrades_session_to_estimates(self):
        """The satellite regression: every pool-side evaluation crashes;
        the session must finish on predictor estimates with warnings —
        not deadlock, not raise."""
        X, y = _problem(n=80, d=4)
        evaluator = _CrashInWorker(_evaluator())
        with pytest.warns(RuntimeWarning, match="degrading"):
            result = api.search(
                X, y, "classification",
                evaluator=evaluator,
                oracle_workers=1,
                oracle_retries=0,
                **self.CFG,
            )
        deferred = [r for r in result.history if r.triggered and not r.is_real]
        assert deferred, "no evaluation was ever deferred to the pool"
        # Degraded steps keep their φ estimate in the record; the result
        # is still well-formed and anchored by the real cold-start scores.
        assert np.isfinite(result.best_score)
        assert result.best_score >= result.base_score - 1e-12

    def test_session_reconciles_on_checkpoint(self, tmp_path):
        from repro.core.session import SearchSession
        from repro.core.config import FastFTConfig

        X, y = _problem(n=80, d=4)
        cfg = FastFTConfig(**{**self.CFG, "reconcile_every_k": 50})
        session = SearchSession(X, y, "classification", config=cfg)
        # Step past cold start, stopping mid-episode so a deferred
        # evaluation is genuinely in flight when the checkpoint lands.
        for _ in range(3):
            session.step()
        assert session._pending_evals, "expected an in-flight deferred evaluation"
        path = str(tmp_path / "mid.ckpt")
        session.checkpoint(path)  # reconcile point: must not raise
        assert not session._pending_evals
        resumed = SearchSession.resume(path)
        resumed.run()
        session.run()
        assert repr(session.result().best_score) == repr(resumed.result().best_score)
        session.close()
        resumed.close()

    def test_on_reconcile_callback_fires(self):
        from repro.core.callbacks import Callback

        class _Spy(Callback):
            def __init__(self):
                self.events = []

            def on_reconcile(self, session, landed, degraded):
                self.events.append((session.global_step, landed, degraded))

        X, y = _problem(n=80, d=4)
        spy = _Spy()
        result = api.search(
            X, y, "classification",
            callbacks=[spy],
            oracle_workers=0,
            **self.CFG,
        )
        deferred = sum(1 for r in result.history if r.triggered and not r.is_real)
        assert deferred > 0
        assert spy.events, "no reconcile event fired"
        assert sum(landed for _, landed, _ in spy.events) == deferred
        assert all(deg == 0 for *_, deg in spy.events)
