"""Tests for the Performance Predictor, Novelty Estimator and reward schedule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.novelty import NoveltyEstimator, novelty_distance
from repro.core.operations import OPERATION_NAMES
from repro.core.predictor import PerformancePredictor, SequenceRegressor, make_encoder
from repro.core.reward import NoveltyWeightSchedule, downstream_reward, pseudo_reward
from repro.core.tokens import TokenVocabulary

VOCAB = TokenVocabulary(OPERATION_NAMES, n_feature_slots=32)


def random_sequences(rng, n, max_len=20):
    out = []
    for _ in range(n):
        body = rng.integers(4, len(VOCAB), size=rng.integers(2, max_len)).tolist()
        out.append(VOCAB.finalize(body))
    return out


class TestPerformancePredictor:
    def test_predict_scalar(self, rng):
        pp = PerformancePredictor(len(VOCAB), seed=0)
        value = pp.predict(random_sequences(rng, 1)[0])
        assert isinstance(value, float)
        assert np.isfinite(value)

    def test_fit_reduces_loss(self, rng):
        pp = PerformancePredictor(len(VOCAB), embed_dim=16, hidden_dim=16, num_layers=1, seed=0)
        seqs = random_sequences(rng, 12)
        scores = rng.uniform(0, 1, size=12)
        first = pp.fit(seqs, scores, epochs=1, rng=rng)
        for _ in range(6):
            last = pp.fit(seqs, scores, epochs=5, rng=rng)
        assert last < first

    def test_fit_learns_sequence_signal(self, rng):
        """Score = normalized count of a marker token — learnable from tokens."""
        pp = PerformancePredictor(len(VOCAB), embed_dim=16, hidden_dim=16, num_layers=1, seed=0)
        marker = VOCAB.op_token("add")
        seqs, scores = [], []
        for _ in range(20):
            body = rng.integers(4, len(VOCAB), size=10).tolist()
            seqs.append(VOCAB.finalize(body))
            scores.append(body.count(marker) / 10.0)
        pp.fit(seqs, np.array(scores), epochs=40, rng=rng)
        preds = pp.predict_batch(seqs)
        correlation = np.corrcoef(preds, scores)[0, 1]
        assert correlation > 0.5

    def test_batch_matches_single(self, rng):
        pp = PerformancePredictor(len(VOCAB), seed=0)
        seqs = random_sequences(rng, 4, max_len=8)
        batch = pp.predict_batch(seqs)
        singles = np.array([pp.predict(s) for s in seqs])
        assert np.allclose(batch, singles, atol=1e-9)

    def test_mismatched_fit_inputs_raise(self, rng):
        pp = PerformancePredictor(len(VOCAB), seed=0)
        with pytest.raises(ValueError):
            pp.fit(random_sequences(rng, 3), np.zeros(2))
        with pytest.raises(ValueError):
            pp.fit([], np.zeros(0))

    def test_memory_footprint_monotone_in_seq_len(self):
        pp = PerformancePredictor(len(VOCAB), seed=0)
        short = pp.memory_footprint(16)
        long = pp.memory_footprint(256)
        assert long["activation_bytes"] > short["activation_bytes"]
        assert long["parameter_bytes"] == short["parameter_bytes"]

    @pytest.mark.parametrize("seq_model", ["lstm", "rnn", "transformer"])
    def test_all_encoders_work(self, seq_model, rng):
        pp = PerformancePredictor(
            len(VOCAB), seq_model=seq_model, embed_dim=8, hidden_dim=8, num_layers=1, seed=0
        )
        seqs = random_sequences(rng, 4, max_len=6)
        pp.fit(seqs, np.ones(4) * 0.5, epochs=1, rng=rng)
        assert np.isfinite(pp.predict(seqs[0]))

    def test_bad_head_dims_raise(self):
        with pytest.raises(ValueError):
            SequenceRegressor(len(VOCAB), head_dims=(16, 4))

    def test_unknown_encoder_raises(self):
        with pytest.raises(ValueError):
            make_encoder("gru", 10, 8, 8, 1, 0)


class TestNoveltyEstimator:
    def test_score_non_negative(self, rng):
        ne = NoveltyEstimator(len(VOCAB), embed_dim=8, hidden_dim=8, num_layers=1, seed=0)
        for seq in random_sequences(rng, 5, max_len=8):
            assert ne.score(seq) >= 0.0

    def test_target_network_frozen(self, rng):
        ne = NoveltyEstimator(len(VOCAB), embed_dim=8, hidden_dim=8, num_layers=1, seed=0)
        seqs = random_sequences(rng, 6, max_len=8)
        before = [float(ne.target(s).data.ravel()[0]) for s in seqs]
        ne.fit(seqs, epochs=5, rng=rng)
        after = [float(ne.target(s).data.ravel()[0]) for s in seqs]
        assert np.allclose(before, after)

    def test_training_reduces_error_on_seen_sequences(self, rng):
        ne = NoveltyEstimator(
            len(VOCAB), embed_dim=8, hidden_dim=8, num_layers=1, orthogonal_gain=4.0, seed=0
        )
        seqs = random_sequences(rng, 10, max_len=8)
        before = np.mean([ne.score(s) for s in seqs])
        ne.fit(seqs, epochs=30, rng=rng)
        after = np.mean([ne.score(s) for s in seqs])
        assert after < before

    def test_unexplored_token_region_more_novel(self, rng):
        """RND's guarantee: distillation error stays high in *unexplored*
        regions. Train on sequences over one half of the feature-token range
        and probe the other half."""
        ne = NoveltyEstimator(
            len(VOCAB), embed_dim=8, hidden_dim=8, num_layers=1, orthogonal_gain=4.0, seed=0
        )
        lo, mid, hi = 4 + 14, 4 + 14 + 16, len(VOCAB)  # feature-token range halves

        def region_sequences(generator, low, high, n=12):
            return [
                VOCAB.finalize(generator.integers(low, high, size=8).tolist())
                for _ in range(n)
            ]

        seen = region_sequences(rng, lo, mid)
        ne.fit(seen, epochs=60, rng=rng)
        seen_scores = ne.score_batch(seen)
        unseen_scores = ne.score_batch(region_sequences(np.random.default_rng(999), mid, hi))
        assert np.median(unseen_scores) > np.median(seen_scores)

    def test_embedding_shape(self, rng):
        ne = NoveltyEstimator(len(VOCAB), embed_dim=8, hidden_dim=8, num_layers=1, seed=0)
        emb = ne.embedding(random_sequences(rng, 1)[0])
        assert emb.shape == (8,)

    def test_fit_empty_raises(self):
        ne = NoveltyEstimator(len(VOCAB), seed=0)
        with pytest.raises(ValueError):
            ne.fit([])


class TestNoveltyDistance:
    def test_no_history_is_max(self, rng):
        assert novelty_distance(rng.normal(size=8), None) == 1.0
        assert novelty_distance(rng.normal(size=8), np.empty((0, 8))) == 1.0

    def test_identical_embedding_zero(self, rng):
        e = rng.normal(size=8)
        assert novelty_distance(e, np.stack([e])) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_embedding_one(self):
        e = np.array([1.0, 0.0])
        history = np.array([[0.0, 1.0]])
        assert novelty_distance(e, history) == pytest.approx(1.0)

    def test_min_over_history(self, rng):
        e = rng.normal(size=4)
        history = np.stack([e, rng.normal(size=4)])
        assert novelty_distance(e, history) == pytest.approx(0.0, abs=1e-12)

    def test_zero_embedding_safe(self):
        assert novelty_distance(np.zeros(4), np.ones((2, 4))) == 1.0


class TestRewardSchedule:
    def test_boundary_values(self):
        sched = NoveltyWeightSchedule(start=0.1, end=0.005, decay_steps=1000)
        assert sched.weight(0) == pytest.approx(0.1)
        assert sched.weight(10**7) == pytest.approx(0.005, abs=1e-6)

    def test_monotone_decreasing(self):
        sched = NoveltyWeightSchedule(0.1, 0.005, 100)
        weights = [sched.weight(i) for i in range(0, 1000, 50)]
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_paper_defaults_at_decay_steps(self):
        sched = NoveltyWeightSchedule()
        expected = 0.005 + (0.1 - 0.005) * np.exp(-1)
        assert sched.weight(1000) == pytest.approx(expected)

    def test_negative_step_raises(self):
        with pytest.raises(ValueError):
            NoveltyWeightSchedule().weight(-1)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            NoveltyWeightSchedule(decay_steps=0)
        with pytest.raises(ValueError):
            NoveltyWeightSchedule(start=-0.1)

    @given(st.integers(0, 10000))
    @settings(max_examples=50, deadline=None)
    def test_weight_within_bounds(self, step):
        sched = NoveltyWeightSchedule(0.1, 0.005, 1000)
        assert 0.005 <= sched.weight(step) <= 0.1 + 1e-12


class TestRewardFunctions:
    def test_downstream_reward_is_delta(self):
        assert downstream_reward(0.8, 0.7) == pytest.approx(0.1)

    def test_pseudo_reward_composition(self):
        r = pseudo_reward(0.8, 0.7, novelty=2.0, novelty_weight=0.1)
        assert r == pytest.approx(0.1 + 0.2)

    def test_negative_novelty_raises(self):
        with pytest.raises(ValueError):
            pseudo_reward(0.5, 0.5, novelty=-1.0, novelty_weight=0.1)
