"""Tests for feature-space deduplication and plan serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import FeatureSpace, TransformationPlan


@pytest.fixture
def space(rng):
    X = rng.normal(size=(40, 3))
    return FeatureSpace(X, ["a", "b", "c"]), X


class TestDeduplication:
    def test_unary_duplicate_skipped(self, space):
        fs, _ = space
        first = fs.apply_unary("square", [0])
        second = fs.apply_unary("square", [0])
        assert len(first) == 1
        assert second == []
        assert fs.n_features == 4

    def test_binary_duplicate_skipped(self, space):
        fs, _ = space
        assert len(fs.apply_binary("divide", [0], [1])) == 1
        assert fs.apply_binary("divide", [0], [1]) == []

    def test_commutative_twins_collapse(self, space):
        """(a+b) and (b+a) are one feature; (a-b) and (b-a) are two."""
        fs, _ = space
        assert len(fs.apply_binary("add", [0], [1])) == 1
        assert fs.apply_binary("add", [1], [0]) == []
        assert len(fs.apply_binary("subtract", [0], [1])) == 1
        assert len(fs.apply_binary("subtract", [1], [0])) == 1

    def test_commutative_pairs_deduped_within_call(self, space):
        fs, _ = space
        new = fs.apply_binary("multiply", [0, 1], [0, 1])
        assert len(new) == 1  # only (0,1); (1,0) is its twin

    def test_duplicate_allowed_after_prune(self, space):
        """A pruned derivation may be regenerated (it is no longer live)."""
        fs, _ = space
        fs.apply_unary("log", [0])
        fs.prune([0, 1, 2])
        assert len(fs.apply_unary("log", [0])) == 1

    def test_non_commutative_order_matters(self, space):
        fs, X = space
        d1 = fs.apply_binary("divide", [0], [1])[0]
        d2 = fs.apply_binary("divide", [1], [0])[0]
        assert fs.expression(d1) != fs.expression(d2)


class TestPlanSerialization:
    def test_roundtrip_preserves_outputs(self, space):
        fs, X = space
        fs.apply_unary("tanh", [0])
        fs.apply_binary("multiply", [1], [2])
        plan = fs.snapshot()
        restored = TransformationPlan.from_json(plan.to_json())
        assert np.allclose(restored.apply(X), plan.apply(X))
        assert restored.expressions() == plan.expressions()
        assert restored.n_input_columns == plan.n_input_columns

    def test_roundtrip_after_prune(self, space):
        fs, X = space
        mid = fs.apply_unary("square", [0])[0]
        top = fs.apply_binary("add", [mid], [1])[0]
        fs.prune([top])
        restored = TransformationPlan.from_json(fs.snapshot().to_json())
        assert np.allclose(restored.apply(X)[:, 0], X[:, 0] ** 2 + X[:, 1])

    def test_json_is_plain_text(self, space):
        fs, _ = space
        text = fs.snapshot().to_json()
        assert isinstance(text, str)
        assert '"live_ids"' in text

    def test_corrupt_json_raises(self):
        with pytest.raises(ValueError):
            TransformationPlan.from_json(
                '{"n_input_columns": 2, "feature_names": ["a","b"], '
                '"live_ids": [99], "nodes": []}'
            )

    def test_feature_names_preserved(self, space):
        fs, _ = space
        restored = TransformationPlan.from_json(fs.snapshot().to_json())
        assert restored.feature_names == ["a", "b", "c"]
