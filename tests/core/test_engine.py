"""Integration tests for the FastFT engine (Algorithms 1 & 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FastFTConfig
from repro.core.engine import FastFT, TimeBreakdown
from repro.core.tracing import feature_importance_table, reward_peak_features
from repro.ml.evaluation import DownstreamEvaluator


def tiny_config(**overrides) -> FastFTConfig:
    base = dict(
        episodes=4,
        steps_per_episode=3,
        cold_start_episodes=1,
        retrain_every_episodes=2,
        component_epochs=2,
        trigger_warmup=2,
        cv_splits=3,
        rf_estimators=4,
        max_clusters=4,
        mi_max_rows=100,
        seed=0,
    )
    base.update(overrides)
    return FastFTConfig(**base)


@pytest.fixture(scope="module")
def interaction_problem():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(180, 6))
    y = (X[:, 0] * X[:, 1] + 0.3 * X[:, 2] > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def fitted_result(interaction_problem):
    X, y = interaction_problem
    return FastFT(tiny_config()).fit(X, y, task="classification")


class TestEngineBasics:
    def test_result_fields(self, fitted_result):
        r = fitted_result
        assert np.isfinite(r.base_score)
        assert r.best_score >= r.base_score  # base plan is always a candidate
        assert r.n_downstream_calls >= 1
        assert r.task == "classification"
        assert len(r.history) == 4 * 3

    def test_transform_roundtrip(self, fitted_result, interaction_problem):
        X, _ = interaction_problem
        out = fitted_result.transform(X)
        assert out.shape[0] == X.shape[0]
        assert out.shape[1] == fitted_result.plan.n_features
        assert np.isfinite(out).all()

    def test_transform_new_data(self, fitted_result):
        rng = np.random.default_rng(1)
        out = fitted_result.transform(rng.normal(size=(20, 6)))
        assert out.shape == (20, fitted_result.plan.n_features)

    def test_expressions_align(self, fitted_result):
        exprs = fitted_result.expressions()
        assert len(exprs) == fitted_result.plan.n_features
        assert all(isinstance(e, str) and e for e in exprs)

    def test_history_schema(self, fitted_result):
        record = fitted_result.history[0]
        assert record.episode == 0 and record.step == 0
        assert record.n_features > 0
        assert record.n_clusters >= 1
        assert record.time_evaluation >= 0

    def test_cold_start_steps_are_real(self, fitted_result):
        cold = [r for r in fitted_result.history if r.episode < 1]
        assert all(r.is_real for r in cold)

    def test_time_breakdown_consistent(self, fitted_result):
        t = fitted_result.time
        assert t.overall == pytest.approx(t.optimization + t.estimation + t.evaluation)
        per_ep = t.per_episode(4)
        assert per_ep.overall == pytest.approx(t.overall / 4)

    def test_reward_peaks(self, fitted_result):
        peaks = fitted_result.reward_peaks(3)
        assert len(peaks) == 3
        assert peaks[0].reward >= peaks[1].reward >= peaks[2].reward

    def test_invalid_task_raises(self, interaction_problem):
        X, y = interaction_problem
        with pytest.raises(ValueError):
            FastFT(tiny_config()).fit(X, y, task="ranking")


class TestEngineModes:
    def test_improves_over_base(self, interaction_problem):
        """On an interaction-driven problem FastFT should find useful crossings."""
        X, y = interaction_problem
        result = FastFT(tiny_config(episodes=6, steps_per_episode=4)).fit(
            X, y, task="classification"
        )
        assert result.best_score >= result.base_score

    def test_no_pp_evaluates_every_step(self, interaction_problem):
        X, y = interaction_problem
        cfg = tiny_config(use_performance_predictor=False)
        result = FastFT(cfg).fit(X, y, task="classification")
        # every exploration step + the baseline call hit the downstream task
        assert result.n_downstream_calls >= cfg.episodes * cfg.steps_per_episode
        assert all(r.is_real for r in result.history)

    def test_pp_reduces_downstream_calls(self, interaction_problem):
        X, y = interaction_problem
        cfg = tiny_config(episodes=6, alpha=5.0, beta=5.0, trigger_warmup=2)
        with_pp = FastFT(cfg).fit(X, y, task="classification")
        no_pp = FastFT(tiny_config(episodes=6, use_performance_predictor=False)).fit(
            X, y, task="classification"
        )
        assert with_pp.n_downstream_calls < no_pp.n_downstream_calls

    def test_no_novelty_mode(self, interaction_problem):
        X, y = interaction_problem
        result = FastFT(tiny_config(use_novelty=False)).fit(X, y, task="classification")
        assert all(r.novelty == 0.0 for r in result.history)

    def test_uniform_replay_mode(self, interaction_problem):
        X, y = interaction_problem
        result = FastFT(tiny_config(prioritized_replay=False)).fit(
            X, y, task="classification"
        )
        assert result.best_score >= result.base_score

    def test_alpha_beta_zero_disables_triggering(self, interaction_problem):
        X, y = interaction_problem
        cfg = tiny_config(alpha=0.0, beta=0.0, trigger_warmup=0, episodes=4)
        result = FastFT(cfg).fit(X, y, task="classification")
        explore = [r for r in result.history if r.episode >= cfg.cold_start_episodes]
        assert not any(r.triggered for r in explore)

    @pytest.mark.parametrize("framework", ["dqn", "dueling_double_dqn"])
    def test_dqn_frameworks(self, framework, interaction_problem):
        X, y = interaction_problem
        result = FastFT(tiny_config(episodes=2, rl_framework=framework)).fit(
            X, y, task="classification"
        )
        assert np.isfinite(result.best_score)

    def test_regression_task(self, rng):
        X = rng.normal(size=(150, 5))
        y = X[:, 0] * X[:, 1] + 0.1 * rng.normal(size=150)
        result = FastFT(tiny_config()).fit(X, y, task="regression")
        assert np.isfinite(result.best_score)

    def test_detection_task(self, detection_data):
        X, y = detection_data
        result = FastFT(tiny_config()).fit(X, y, task="detection")
        assert 0.0 <= result.best_score <= 1.0

    def test_custom_evaluator_respected(self, interaction_problem):
        X, y = interaction_problem
        evaluator = DownstreamEvaluator("classification", n_splits=3, seed=0)
        FastFT(tiny_config(episodes=2)).fit(
            X, y, task="classification", evaluator=evaluator
        )
        assert evaluator.n_calls > 0

    def test_deterministic_given_seed(self, interaction_problem):
        X, y = interaction_problem
        a = FastFT(tiny_config(episodes=2)).fit(X, y, task="classification")
        b = FastFT(tiny_config(episodes=2)).fit(X, y, task="classification")
        assert a.best_score == pytest.approx(b.best_score)
        assert [r.op_name for r in a.history] == [r.op_name for r in b.history]

    def test_feature_cap_respected(self, interaction_problem):
        X, y = interaction_problem
        cfg = tiny_config(max_features=10)
        result = FastFT(cfg).fit(X, y, task="classification")
        assert all(r.n_features <= 10 for r in result.history)

    def test_fit_transform(self, interaction_problem):
        X, y = interaction_problem
        out = FastFT(tiny_config(episodes=2)).fit_transform(X, y, task="classification")
        assert out.shape[0] == X.shape[0]


class TestTracing:
    def test_importance_table(self, fitted_result, interaction_problem):
        X, y = interaction_problem
        transformed = fitted_result.transform(X)
        rows = feature_importance_table(
            transformed, y, "classification", fitted_result.expressions(), top_k=5
        )
        assert len(rows) == min(5, transformed.shape[1])
        assert all(r.importance >= 0 for r in rows)
        importances = [r.importance for r in rows]
        assert importances == sorted(importances, reverse=True)

    def test_importance_table_misaligned_raises(self, interaction_problem):
        X, y = interaction_problem
        with pytest.raises(ValueError):
            feature_importance_table(X, y, "classification", ["just_one"])

    def test_reward_peak_features(self, fitted_result):
        peaks = reward_peak_features(fitted_result, top_k=3)
        assert len(peaks) == 3
        for peak in peaks:
            assert {"episode", "step", "reward", "score", "expressions"} <= set(peak)


class TestTimeBreakdown:
    def test_overall_sum(self):
        t = TimeBreakdown(1.0, 2.0, 3.0)
        assert t.overall == 6.0

    def test_per_episode_invalid(self):
        with pytest.raises(ValueError):
            TimeBreakdown().per_episode(0)
