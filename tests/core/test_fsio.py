"""repro.core.fsio: atomic publication — readers see absent or complete."""

from __future__ import annotations

import os

import pytest

from repro.core import fsio


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.bin")
        fsio.atomic_write_bytes(path, b"one")
        assert open(path, "rb").read() == b"one"
        fsio.atomic_write_bytes(path, b"two")
        assert open(path, "rb").read() == b"two"
        fsio.atomic_write_text(path, "three")
        assert open(path, encoding="utf-8").read() == "three"

    def test_no_temp_files_survive_success(self, tmp_path):
        path = str(tmp_path / "out.bin")
        for _ in range(3):
            fsio.atomic_write_bytes(path, b"payload")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_failed_publish_leaves_old_content_and_no_litter(
        self, tmp_path, monkeypatch
    ):
        """A crash at the publish step (os.replace) must leave the previous
        version untouched and clean up its temp file."""
        path = str(tmp_path / "out.bin")
        fsio.atomic_write_bytes(path, b"durable")

        def exploding_replace(src, dst):
            raise OSError("injected crash at publish")

        monkeypatch.setattr(fsio.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected crash"):
            fsio.atomic_write_bytes(path, b"never lands")
        monkeypatch.undo()
        assert open(path, "rb").read() == b"durable"
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_fsync_dir_tolerates_plain_directories(self, tmp_path):
        fsio.fsync_dir(str(tmp_path))  # must not raise


class TestCheckpointAtomicity:
    def test_crash_during_checkpoint_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch, binary_data
    ):
        """The PR's motivating bug: a crash mid-checkpoint used to leave a
        torn file; now the previous durable checkpoint survives."""
        from repro.core.config import FastFTConfig
        from repro.core.session import SearchSession

        X, y = binary_data
        config = FastFTConfig(
            episodes=2, steps_per_episode=2, cold_start_episodes=1,
            retrain_every_episodes=1, component_epochs=2, trigger_warmup=2,
            cv_splits=2, rf_estimators=2, max_clusters=3, mi_max_rows=64,
        )
        path = str(tmp_path / "ckpt.pkl")
        session = SearchSession(X, y, config=config)
        session.run(until=1)
        session.checkpoint(path)
        good = open(path, "rb").read()

        session.run(until=2)
        monkeypatch.setattr(
            fsio.os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("crash"))
        )
        with pytest.raises(OSError, match="crash"):
            session.checkpoint(path)
        monkeypatch.undo()
        assert open(path, "rb").read() == good
        # And the surviving checkpoint still resumes cleanly.
        SearchSession.resume(path)
