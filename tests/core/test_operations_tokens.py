"""Tests for the operation set and the token vocabulary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.operations import (
    BINARY_OPERATIONS,
    OPERATION_NAMES,
    OPERATIONS,
    UNARY_OPERATIONS,
    get_operation,
)
from repro.core.tokens import TokenVocabulary


class TestOperations:
    def test_registry_partitions(self):
        assert len(OPERATIONS) == len(UNARY_OPERATIONS) + len(BINARY_OPERATIONS)
        assert all(op.arity == 1 for op in UNARY_OPERATIONS)
        assert all(op.arity == 2 for op in BINARY_OPERATIONS)
        assert len(set(OPERATION_NAMES)) == len(OPERATION_NAMES)

    def test_lookup(self):
        assert get_operation("add").arity == 2
        with pytest.raises(KeyError):
            get_operation("integrate")

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            get_operation("add")(np.ones(3))
        with pytest.raises(ValueError):
            get_operation("log")(np.ones(3), np.ones(3))

    def test_divide_by_zero_safe(self):
        out = get_operation("divide")(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(out).all()

    def test_log_of_negative_safe(self):
        out = get_operation("log")(np.array([-5.0, 0.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(np.log(6.0))

    def test_exp_overflow_clipped(self):
        out = get_operation("exp")(np.array([1e6]))
        assert np.isfinite(out).all()

    def test_sqrt_of_negative_uses_abs(self):
        assert get_operation("sqrt")(np.array([-4.0]))[0] == pytest.approx(2.0)

    def test_reciprocal_of_zero_safe(self):
        assert np.isfinite(get_operation("reciprocal")(np.array([0.0]))).all()

    def test_format_templates(self):
        assert get_operation("add").format("a", "b") == "(a+b)"
        assert get_operation("square").format("x") == "(x)^2"

    @given(
        st.sampled_from(OPERATION_NAMES),
        hnp.arrays(np.float64, st.integers(1, 30), elements=st.floats(-1e6, 1e6)),
    )
    @settings(max_examples=80, deadline=None)
    def test_all_ops_finite_on_finite_input(self, name, values):
        op = get_operation(name)
        args = [values] * op.arity
        assert np.isfinite(op(*args)).all()

    def test_binary_shapes_broadcastable(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        for op in BINARY_OPERATIONS:
            assert op(a, b).shape == (50,)


class TestTokenVocabulary:
    def test_layout(self):
        vocab = TokenVocabulary(["add", "log"], n_feature_slots=10)
        assert len(vocab) == 4 + 2 + 10
        assert vocab.op_token("add") == 4
        assert vocab.op_token("log") == 5
        assert vocab.feature_token(0) == 6
        assert vocab.feature_token(9) == 15

    def test_feature_slot_wraparound(self):
        vocab = TokenVocabulary(["add"], n_feature_slots=4)
        assert vocab.feature_token(4) == vocab.feature_token(0)

    def test_describe(self):
        vocab = TokenVocabulary(["add"], n_feature_slots=4)
        assert vocab.describe(vocab.SOS) == "<sos>"
        assert vocab.describe(vocab.op_token("add")) == "add"
        assert vocab.describe(vocab.feature_token(2)) == "f[2]"
        with pytest.raises(ValueError):
            vocab.describe(len(vocab))

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            TokenVocabulary(["add"]).op_token("mul")

    def test_duplicate_ops_raise(self):
        with pytest.raises(ValueError):
            TokenVocabulary(["add", "add"])

    def test_negative_feature_raises(self):
        with pytest.raises(ValueError):
            TokenVocabulary(["add"]).feature_token(-1)

    def test_step_tokens_binary(self):
        vocab = TokenVocabulary(["add"], n_feature_slots=8)
        tokens = vocab.step_tokens("add", [0, 1], [2])
        assert tokens == [
            vocab.feature_token(0),
            vocab.feature_token(1),
            vocab.op_token("add"),
            vocab.feature_token(2),
            vocab.SEP,
        ]

    def test_step_tokens_unary(self):
        vocab = TokenVocabulary(["log"], n_feature_slots=8)
        tokens = vocab.step_tokens("log", [3])
        assert tokens == [vocab.feature_token(3), vocab.op_token("log"), vocab.SEP]

    def test_finalize_wraps(self):
        vocab = TokenVocabulary(["add"])
        seq = vocab.finalize([10, 11])
        assert seq[0] == vocab.SOS and seq[-1] == vocab.EOS
        assert seq.tolist() == [vocab.SOS, 10, 11, vocab.EOS]

    def test_finalize_truncates_oldest(self):
        vocab = TokenVocabulary(["add"])
        seq = vocab.finalize(list(range(10, 30)), max_len=8)
        assert len(seq) == 8
        assert seq[0] == vocab.SOS and seq[-1] == vocab.EOS
        # keeps the most recent body tokens
        assert seq[-2] == 29

    @given(st.integers(3, 64), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_finalize_length_bounded(self, max_len, body_len):
        vocab = TokenVocabulary(["add"])
        seq = vocab.finalize([vocab.SEP] * body_len, max_len=max_len)
        assert len(seq) <= max(max_len, 2)
