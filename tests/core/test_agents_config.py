"""Tests for the cascading agents and FastFTConfig validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agents import CascadingAgents
from repro.core.config import FastFTConfig
from repro.core.operations import OPERATIONS
from repro.core.state import STATE_DIM


@pytest.fixture
def agents():
    return CascadingAgents(n_ops=len(OPERATIONS), memory_size=16, replay_batch_size=4, seed=0)


def is_binary(op_idx: int) -> bool:
    return OPERATIONS[op_idx].arity == 2


class TestCascadingAgents:
    def test_decide_produces_valid_cascade(self, agents, rng):
        overall = rng.normal(size=STATE_DIM)
        clusters = rng.normal(size=(4, STATE_DIM))
        decision = agents.decide(overall, clusters, is_binary)
        assert 0 <= decision.head_index < 4
        assert 0 <= decision.op_index < len(OPERATIONS)
        if is_binary(decision.op_index):
            assert 0 <= decision.tail_index < 4
        else:
            assert decision.tail_index is None

    def test_op_state_concatenates_head(self, agents, rng):
        overall = rng.normal(size=STATE_DIM)
        clusters = rng.normal(size=(3, STATE_DIM))
        decision = agents.decide(overall, clusters, is_binary)
        assert decision.op_state.shape == (2 * STATE_DIM,)
        assert np.allclose(decision.op_state[:STATE_DIM], overall)
        assert np.allclose(decision.op_state[STATE_DIM:], clusters[decision.head_index])

    def test_store_returns_priority_and_fills_buffers(self, agents, rng):
        overall = rng.normal(size=STATE_DIM)
        clusters = rng.normal(size=(3, STATE_DIM))
        decision = agents.decide(overall, clusters, is_binary)
        priority = agents.store(decision, 0.5, overall, clusters, done=False)
        assert priority >= 0
        assert len(agents.buffers["head"]) == 1
        assert len(agents.buffers["op"]) == 1
        expected_tail = 1 if decision.tail_index is not None else 0
        assert len(agents.buffers["tail"]) == expected_tail

    def test_optimize_noop_until_batch_available(self, agents):
        assert agents.optimize() == {}

    def test_optimize_after_enough_transitions(self, agents, rng):
        overall = rng.normal(size=STATE_DIM)
        for _ in range(6):
            clusters = rng.normal(size=(3, STATE_DIM))
            decision = agents.decide(overall, clusters, is_binary)
            agents.store(decision, float(rng.normal()), overall, clusters, done=False)
        losses = agents.optimize()
        assert "head_critic" in losses and "op_critic" in losses

    def test_uniform_buffer_variant(self, rng):
        agents = CascadingAgents(
            n_ops=len(OPERATIONS), memory_size=8, prioritized=False, seed=0
        )
        from repro.rl.replay import ReplayBuffer

        assert isinstance(agents.buffers["head"], ReplayBuffer)

    @pytest.mark.parametrize("framework", ["dqn", "dueling_double_dqn"])
    def test_dqn_frameworks_compatible(self, framework, rng):
        agents = CascadingAgents(n_ops=len(OPERATIONS), framework=framework, seed=0)
        overall = rng.normal(size=STATE_DIM)
        clusters = rng.normal(size=(3, STATE_DIM))
        decision = agents.decide(overall, clusters, is_binary)
        agents.store(decision, 0.1, overall, clusters, done=True)
        assert len(agents.buffers["head"]) == 1


class TestFastFTConfig:
    def test_paper_defaults(self):
        cfg = FastFTConfig()
        assert cfg.episodes == 200
        assert cfg.steps_per_episode == 15
        assert cfg.cold_start_episodes == 10
        assert cfg.retrain_every_episodes == 5
        assert cfg.alpha == 10.0 and cfg.beta == 5.0
        assert cfg.novelty_weight_start == 0.10
        assert cfg.novelty_weight_end == 0.005
        assert cfg.novelty_decay_steps == 1000
        assert cfg.memory_size == 16
        assert cfg.orthogonal_gain == 16.0
        assert cfg.predictor_head_dims == (16, 1)
        assert cfg.novelty_head_dims == (16, 4, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FastFTConfig(episodes=0)
        with pytest.raises(ValueError):
            FastFTConfig(cold_start_episodes=10, episodes=5)
        with pytest.raises(ValueError):
            FastFTConfig(alpha=-1)
        with pytest.raises(ValueError):
            FastFTConfig(novelty_decay_steps=0)
        with pytest.raises(ValueError):
            FastFTConfig(memory_size=0)
        with pytest.raises(ValueError):
            FastFTConfig(seq_model="gru")

    def test_resolved_max_features(self):
        cfg = FastFTConfig()
        assert cfg.resolved_max_features(10) == 30
        assert cfg.resolved_max_features(2) == 10  # n + 8 floor
        cfg2 = FastFTConfig(max_features=5)
        assert cfg2.resolved_max_features(10) == 10  # never below original count
        assert cfg2.resolved_max_features(3) == 5

    def test_trigger_window_validation(self):
        with pytest.raises(ValueError, match="trigger_window"):
            FastFTConfig(trigger_window=0)

    def test_trigger_warmup_validation(self):
        # With triggering active a zero warmup would percentile an empty
        # window on the first exploration step.
        with pytest.raises(ValueError, match="trigger_warmup"):
            FastFTConfig(trigger_warmup=0)
        with pytest.raises(ValueError, match="trigger_warmup"):
            FastFTConfig(trigger_warmup=0, alpha=0.0, beta=5.0)
        # The degenerate Fig 12 arm (alpha = beta = 0) never consults the
        # warmup, so 0 stays legal there.
        assert FastFTConfig(trigger_warmup=0, alpha=0.0, beta=0.0).trigger_warmup == 0
        # A warmup the window can never reach would force a real evaluation
        # on every step forever.
        with pytest.raises(ValueError, match="trigger_warmup"):
            FastFTConfig(trigger_window=4, trigger_warmup=8)
        assert FastFTConfig(trigger_window=4, trigger_warmup=4).trigger_warmup == 4

    def test_replay_batch_validation(self):
        with pytest.raises(ValueError, match="replay_batch_size"):
            FastFTConfig(replay_batch_size=0)
        with pytest.raises(ValueError, match="replay_batch_size"):
            FastFTConfig(memory_size=4, replay_batch_size=8)
        assert FastFTConfig(memory_size=8, replay_batch_size=8).replay_batch_size == 8
