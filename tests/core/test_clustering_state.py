"""Tests for MI clustering (Eq. 2) and state representations (Fig 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_features, pairwise_cluster_distance
from repro.core.state import STATE_DIM, describe_matrix, rep_operation


class TestPairwiseDistance:
    def test_shape_and_symmetry(self, rng):
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] > 0).astype(int)
        D = pairwise_cluster_distance(X, y)
        assert D.shape == (5, 5)
        assert np.allclose(D, D.T)
        assert (D >= 0).all()

    def test_redundant_relevant_pair_is_close(self, rng):
        """Duplicated informative features → tiny Eq. 2 distance."""
        base = rng.normal(size=400)
        X = np.column_stack([base, base + 0.01 * rng.normal(size=400), rng.normal(size=400)])
        y = (base > 0).astype(int)
        D = pairwise_cluster_distance(X, y)
        assert D[0, 1] < D[0, 2]
        assert D[0, 1] < D[1, 2]

    def test_row_subsampling(self, rng):
        X = rng.normal(size=(5000, 3))
        y = rng.integers(0, 2, 5000)
        D = pairwise_cluster_distance(X, y, max_rows=100)
        assert np.isfinite(D).all()


class TestClusterFeatures:
    def test_partition_property(self, rng):
        X = rng.normal(size=(150, 8))
        y = (X[:, 0] > 0).astype(int)
        clusters = cluster_features(X, y)
        flattened = sorted(c for cluster in clusters for c in cluster)
        assert flattened == list(range(8))

    def test_duplicates_merge(self, rng):
        base = rng.normal(size=300)
        X = np.column_stack(
            [base, base + 0.01 * rng.normal(size=300), rng.normal(size=300),
             rng.normal(size=300) * 5]
        )
        y = (base > 0).astype(int)
        clusters = cluster_features(X, y, distance_threshold="auto")
        cluster_of = {c: i for i, cl in enumerate(clusters) for c in cl}
        assert cluster_of[0] == cluster_of[1]

    def test_max_clusters_budget(self, rng):
        X = rng.normal(size=(100, 10))
        y = rng.integers(0, 2, 100)
        clusters = cluster_features(X, y, max_clusters=3)
        assert len(clusters) <= 3

    def test_min_clusters_floor(self, rng):
        X = rng.normal(size=(100, 6))
        y = rng.integers(0, 2, 100)
        clusters = cluster_features(X, y, distance_threshold=1e12, min_clusters=2)
        assert len(clusters) >= 2

    def test_single_feature(self, rng):
        clusters = cluster_features(rng.normal(size=(50, 1)), rng.integers(0, 2, 50))
        assert clusters == [[0]]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cluster_features(np.empty((10, 0)), np.zeros(10))

    def test_explicit_threshold(self, rng):
        X = rng.normal(size=(100, 5))
        y = rng.integers(0, 2, 100)
        many = cluster_features(X, y, distance_threshold=0.0)
        few = cluster_features(X, y, distance_threshold=1e9, min_clusters=1)
        assert len(many) >= len(few)

    def test_regression_task(self, rng):
        X = rng.normal(size=(100, 4))
        y = X[:, 0] * 2.0
        clusters = cluster_features(X, y, task="regression")
        assert sorted(c for cl in clusters for c in cl) == list(range(4))


class TestStateRepresentation:
    def test_dimension_is_49(self, rng):
        for shape in [(30, 1), (30, 5), (100, 20)]:
            assert describe_matrix(rng.normal(size=shape)).shape == (STATE_DIM,)

    def test_1d_input_promoted(self, rng):
        assert describe_matrix(rng.normal(size=40)).shape == (STATE_DIM,)

    def test_bounded_under_extreme_values(self):
        X = np.array([[1e30, -1e30], [1e30, -1e30]])
        rep = describe_matrix(X)
        assert np.isfinite(rep).all()
        assert np.abs(rep).max() < 100  # signed-log compression

    def test_distinguishes_distributions(self, rng):
        a = describe_matrix(rng.normal(size=(100, 3)))
        b = describe_matrix(rng.normal(10.0, 5.0, size=(100, 3)))
        assert not np.allclose(a, b)

    def test_deterministic(self, rng):
        X = rng.normal(size=(50, 4))
        assert np.allclose(describe_matrix(X), describe_matrix(X))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe_matrix(np.empty((0, 0)))

    def test_nan_input_handled(self):
        X = np.array([[np.nan, 1.0], [2.0, np.inf]])
        assert np.isfinite(describe_matrix(X)).all()

    @given(st.integers(2, 50), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_fixed_dim_for_any_shape(self, n, d):
        rng = np.random.default_rng(n * d)
        assert describe_matrix(rng.normal(size=(n, d))).shape == (STATE_DIM,)


class TestRepOperation:
    def test_one_hot(self):
        onehot = rep_operation(2, 5)
        assert onehot.tolist() == [0, 0, 1, 0, 0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            rep_operation(5, 5)
        with pytest.raises(ValueError):
            rep_operation(-1, 5)
