"""Tests for FeatureSpace and TransformationPlan (traceability backbone)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS
from repro.core.sequence import FeatureSpace


@pytest.fixture
def space(rng):
    X = rng.normal(size=(50, 3))
    return FeatureSpace(X, ["a", "b", "c"]), X


class TestFeatureSpace:
    def test_initial_state(self, space):
        fs, X = space
        assert fs.n_features == 3
        assert fs.n_samples == 50
        assert np.allclose(fs.matrix(), X)
        assert fs.original_ids == (0, 1, 2)

    def test_unary_application(self, space):
        fs, X = space
        new = fs.apply_unary("square", [0, 1])
        assert len(new) == 2
        assert fs.n_features == 5
        assert np.allclose(fs.values(new[0]), X[:, 0] ** 2)

    def test_binary_group_wise_crossing(self, space):
        fs, X = space
        new = fs.apply_binary("add", [0, 1], [2])
        assert len(new) == 2  # |a_h| × |a_t|
        assert np.allclose(fs.values(new[0]), X[:, 0] + X[:, 2])

    def test_binary_skips_self_pairs(self, space):
        fs, _ = space
        new = fs.apply_binary("multiply", [0], [0, 1])
        # (0,0) skipped because h == t and another pair exists
        assert len(new) == 1

    def test_binary_self_pair_fallback(self, space):
        fs, X = space
        new = fs.apply_binary("multiply", [0], [0])
        assert len(new) == 1
        assert np.allclose(fs.values(new[0]), X[:, 0] ** 2)

    def test_max_new_caps_fanout(self, space):
        fs, _ = space
        new = fs.apply_binary("add", [0, 1, 2], [0, 1, 2], max_new=3,
                              rng=np.random.default_rng(0))
        assert len(new) == 3

    def test_wrong_arity_raises(self, space):
        fs, _ = space
        with pytest.raises(ValueError):
            fs.apply_unary("add", [0])
        with pytest.raises(ValueError):
            fs.apply_binary("log", [0], [1])

    def test_prune_restricts_live_set(self, space):
        fs, _ = space
        new = fs.apply_unary("log", [0])
        fs.prune([new[0], 1])
        assert fs.n_features == 2
        assert fs.live_ids == [new[0], 1]

    def test_prune_to_empty_raises(self, space):
        fs, _ = space
        with pytest.raises(ValueError):
            fs.prune([])

    def test_expressions(self, space):
        fs, _ = space
        sq = fs.apply_unary("square", [0])[0]
        total = fs.apply_binary("add", [sq], [1])[0]
        assert fs.expression(sq) == "(a)^2"
        # commutative operands are canonicalized by feature id: b (fid 1)
        # precedes (a)^2 (fid 3)
        assert fs.expression(total) == "(b+(a)^2)"

    def test_generated_values_sanitized(self, rng):
        X = rng.normal(size=(30, 2)) * 100
        fs = FeatureSpace(X)
        fid = fs.apply_unary("exp", fs.apply_unary("exp", [0]))[0]
        assert np.isfinite(fs.values(fid)).all()

    def test_feature_names_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            FeatureSpace(rng.normal(size=(10, 3)), ["only", "two"])

    def test_binary_max_new_requires_explicit_rng(self, space):
        """Regression: the seed fell back to an *unseeded* generator when a
        caller forgot rng, silently derandomizing the pair sampling."""
        fs, _ = space
        with pytest.raises(ValueError, match="rng"):
            fs.apply_binary("add", [0, 1, 2], [0, 1, 2], max_new=3)
        # Even when the cap would not bind, the contract is uniform.
        with pytest.raises(ValueError, match="rng"):
            fs.apply_binary("add", [0], [1], max_new=99)
        # Without sampling no generator is needed.
        assert fs.apply_binary("add", [0], [1])

    def test_unknown_backend_rejected(self, rng):
        with pytest.raises(ValueError, match="backend"):
            FeatureSpace(rng.normal(size=(5, 2)), backend="sparse")


class TestArenaBackend:
    """The columnar arena must behave exactly like the dict reference."""

    @staticmethod
    def _pair(rng, n=40, d=2):
        X = rng.normal(size=(n, d))
        return FeatureSpace(X, backend="arena"), FeatureSpace(X, backend="dict")

    def test_growth_across_multiple_doublings(self, rng):
        arena, reference = self._pair(rng)
        start_capacity = arena._arena.shape[1]
        for i in range(40):  # 4 -> 8 -> 16 -> 32 -> 64 slot growths
            fid = arena.apply_unary("tanh", [i])[0]
            assert reference.apply_unary("tanh", [i])[0] == fid
        assert arena._arena.shape[1] > 4 * start_capacity
        assert arena.matrix().tobytes() == reference.matrix().tobytes()
        # Growth must not disturb previously handed-out column views.
        assert np.array_equal(arena.values(0), reference.values(0))

    def test_prune_then_apply_reuses_cleanly(self, rng):
        arena, reference = self._pair(rng, d=4)
        for fs in (arena, reference):
            fs.apply_unary("square", [0, 1, 2])
            fs.prune([5, 1, 4])  # non-prefix, reordered live set
            fs.apply_binary("multiply", [5], [1])
            fs.apply_unary("log", [4])
        assert arena.live_ids == reference.live_ids
        assert arena.matrix().tobytes() == reference.matrix().tobytes()
        # A live derivation is still deduped after the prune shuffle...
        assert arena.apply_binary("multiply", [5], [1]) == []
        assert reference.apply_binary("multiply", [5], [1]) == []
        # ...and matrices stay aligned after further growth on reused state.
        for fs in (arena, reference):
            fs.apply_unary("tanh", [fs.live_ids_view[-1]])
        assert arena.matrix().tobytes() == reference.matrix().tobytes()

    def test_duplicate_signatures_track_prune(self, rng):
        arena, _ = self._pair(rng)
        first = arena.apply_unary("square", [0])
        assert arena.apply_unary("square", [0]) == []  # live duplicate skipped
        arena.prune([0, 1])
        again = arena.apply_unary("square", [0])  # pruned -> re-derivable
        assert len(again) == 1 and again != first
        assert arena.apply_unary("square", [0]) == []

    def test_snapshot_after_prune_plan_equivalence(self, rng):
        X = rng.normal(size=(30, 3))
        arena = FeatureSpace(X, backend="arena")
        reference = FeatureSpace(X, backend="dict")
        for fs in (arena, reference):
            mid = fs.apply_unary("square", [0])[0]
            top = fs.apply_binary("add", [mid], [1])[0]
            fs.prune([top, 2])
        assert arena.snapshot().to_json() == reference.snapshot().to_json()
        assert (
            arena.snapshot().apply(X).tobytes()
            == reference.snapshot().apply(X).tobytes()
        )

    def test_matrix_view_zero_copy_on_prefix(self, rng):
        arena, _ = self._pair(rng, d=3)
        view = arena.matrix_view()
        assert view.base is arena._arena
        assert view.flags.f_contiguous and not view.flags.writeable
        assert view.tobytes("C") == arena.matrix().tobytes()
        arena.prune([2, 0])
        gathered = arena.matrix_view()  # non-prefix: falls back to a copy
        assert gathered.flags.c_contiguous
        assert gathered.tobytes() == arena.matrix().tobytes()

    def test_values_read_only_and_keyerror(self, rng):
        arena, _ = self._pair(rng)
        column = arena.values(1)
        with pytest.raises(ValueError):
            column[0] = 0.0
        with pytest.raises(KeyError):
            arena.values(99)

    def test_matrix_rejects_unallocated_fids(self, rng):
        """Regression: the gather path must never read uninitialized arena
        slots for a never-allocated fid (dict backend raises KeyError)."""
        arena, reference = self._pair(rng, d=3)  # capacity 8, fids 0-2 live
        for fs in (arena, reference):
            with pytest.raises(KeyError):
                fs.matrix([0, 5])  # inside capacity, never allocated
            with pytest.raises((KeyError, IndexError)):
                fs.matrix([999])
            with pytest.raises(KeyError):
                fs.matrix_view([0, 5])

    def test_n_samples_cached_at_construction(self, rng):
        arena, reference = self._pair(rng, n=17)
        assert arena.n_samples == reference.n_samples == 17

    def test_pickle_roundtrip_and_legacy_state_migration(self, rng):
        import pickle

        arena, reference = self._pair(rng, d=3)
        arena.apply_unary("square", [0])
        restored = pickle.loads(pickle.dumps(arena))
        assert restored.matrix().tobytes() == arena.matrix().tobytes()
        assert restored.backend == "arena"
        # A pre-arena pickle carries only the dict store; __setstate__
        # adopts it as the dict backend and rebuilds the signature counts.
        reference.apply_unary("square", [0])
        legacy_state = {
            k: v
            for k, v in reference.__dict__.items()
            if k not in ("_backend", "_arena", "_n_samples", "_sig_count")
        }
        migrated = FeatureSpace.__new__(FeatureSpace)
        migrated.__setstate__(legacy_state)
        assert migrated.backend == "dict"
        assert migrated.n_samples == reference.n_samples
        assert migrated.matrix().tobytes() == reference.matrix().tobytes()
        assert migrated._is_duplicate("square", (0,))


class TestTransformationPlan:
    def test_snapshot_reproduces_matrix(self, space):
        fs, X = space
        fs.apply_unary("tanh", [0])
        fs.apply_binary("multiply", [1], [2])
        plan = fs.snapshot()
        assert np.allclose(plan.apply(X), fs.matrix(), atol=1e-9)

    def test_plan_applies_to_new_data(self, space, rng):
        fs, X = space
        fs.apply_binary("divide", [0], [1])
        plan = fs.snapshot()
        X_new = rng.normal(size=(20, 3))
        out = plan.apply(X_new)
        assert out.shape == (20, 4)
        assert np.allclose(out[:, 3], X_new[:, 0] / (X_new[:, 1] + np.where(X_new[:, 1] >= 0, 1e-6, -1e-6)), atol=1e-6)

    def test_plan_survives_pruned_ancestors(self, space):
        """Pruned intermediate features must still be computable via provenance."""
        fs, X = space
        mid = fs.apply_unary("square", [0])[0]
        top = fs.apply_binary("add", [mid], [1])[0]
        fs.prune([top])  # drop everything else, including mid and originals
        plan = fs.snapshot()
        out = plan.apply(X)
        assert out.shape == (50, 1)
        assert np.allclose(out[:, 0], X[:, 0] ** 2 + X[:, 1])

    def test_column_count_mismatch_raises(self, space):
        fs, _ = space
        plan = fs.snapshot()
        with pytest.raises(ValueError):
            plan.apply(np.ones((5, 99)))

    def test_expressions_align_with_columns(self, space):
        fs, X = space
        fs.apply_unary("log", [2])
        plan = fs.snapshot()
        exprs = plan.expressions()
        assert len(exprs) == plan.n_features == 4
        assert exprs[3] == "log(|c|+1)"

    @given(st.lists(st.integers(0, 13), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_random_program_roundtrip(self, op_choices):
        """Any random op program yields a plan that reproduces the matrix."""
        rng = np.random.default_rng(42)
        X = rng.normal(size=(20, 3))
        fs = FeatureSpace(X)
        all_ops = UNARY_OPERATIONS + BINARY_OPERATIONS
        for choice in op_choices:
            op = all_ops[choice % len(all_ops)]
            live = fs.live_ids
            if op.arity == 1:
                fs.apply_unary(op.name, [live[choice % len(live)]])
            else:
                fs.apply_binary(
                    op.name,
                    [live[choice % len(live)]],
                    [live[(choice + 1) % len(live)]],
                )
        plan = fs.snapshot()
        assert np.allclose(plan.apply(X), fs.matrix(), atol=1e-9)
        assert len(plan.expressions()) == fs.n_features

    def test_balanced_parentheses_in_expressions(self, space):
        fs, _ = space
        fs.apply_binary("divide", fs.apply_unary("square", [0]), [1])
        for expr in fs.snapshot().expressions():
            assert expr.count("(") == expr.count(")")


def _plan_payload(**overrides):
    """A minimal valid serialized plan, overridable per test."""
    payload = {
        "n_input_columns": 2,
        "feature_names": ["a", "b"],
        "live_ids": [2],
        "nodes": [
            {"fid": 0, "op": None, "children": [], "source_col": 0},
            {"fid": 1, "op": None, "children": [], "source_col": 1},
            {"fid": 2, "op": "add", "children": [0, 1], "source_col": None},
        ],
    }
    payload.update(overrides)
    return payload


class TestPlanValidation:
    """from_json must reject broken graphs with a ValueError naming the
    offending node, instead of a bare KeyError/IndexError inside apply."""

    def test_valid_payload_loads(self):
        import json

        from repro.core.sequence import TransformationPlan

        plan = TransformationPlan.from_json(json.dumps(_plan_payload()))
        assert plan.apply(np.ones((4, 2))).shape == (4, 1)

    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"live_ids": [99]}, "unknown features"),
            (
                {
                    "nodes": [
                        {"fid": 0, "op": None, "children": [], "source_col": 0},
                        {"fid": 1, "op": None, "children": [], "source_col": 1},
                        {"fid": 2, "op": "add", "children": [0, 7], "source_col": None},
                    ]
                },
                r"node 2: dangling children ids \[7\]",
            ),
            (
                {
                    "live_ids": [0],
                    "nodes": [{"fid": 0, "op": None, "children": [], "source_col": 5}],
                },
                "node 0: source_col 5",
            ),
            (
                {
                    "live_ids": [0],
                    "nodes": [{"fid": 0, "op": None, "children": [], "source_col": None}],
                },
                "node 0: source_col None",
            ),
            (
                {
                    "live_ids": [1],
                    "nodes": [
                        {"fid": 0, "op": None, "children": [], "source_col": 0},
                        {"fid": 1, "op": "warp", "children": [0], "source_col": None},
                    ],
                },
                "node 1: unknown operation 'warp'",
            ),
            (
                {
                    "live_ids": [1],
                    "nodes": [
                        {"fid": 0, "op": None, "children": [], "source_col": 0},
                        {"fid": 1, "op": "add", "children": [0], "source_col": None},
                    ],
                },
                "node 1: add expects 2 operand",
            ),
            (
                {
                    "live_ids": [1],
                    "nodes": [
                        {"fid": 1, "op": "tanh", "children": [2], "source_col": None},
                        {"fid": 2, "op": "tanh", "children": [1], "source_col": None},
                    ],
                },
                "cycle",
            ),
            (
                {
                    "live_ids": [1],
                    "nodes": [
                        {"fid": 1, "op": "square", "children": [1], "source_col": None},
                    ],
                },
                "cycle",
            ),
        ],
        ids=["missing-live", "dangling-child", "col-overflow", "col-none",
             "unknown-op", "arity", "two-node-cycle", "self-cycle"],
    )
    def test_broken_graphs_rejected(self, overrides, message):
        import json

        from repro.core.sequence import TransformationPlan

        with pytest.raises(ValueError, match=message):
            TransformationPlan.from_json(json.dumps(_plan_payload(**overrides)))

    def test_validate_on_instance(self, space):
        fs, _ = space
        fs.snapshot().validate()  # a snapshot is always valid


class TestPlanRoundTripEveryOp:
    def test_roundtrip_byte_identical_over_all_ops(self, rng):
        """For a plan exercising every registered operation,
        from_json(to_json(plan)).apply(X) is byte-identical to
        plan.apply(X) — the serving layer's persistence contract."""
        from repro.core.sequence import TransformationPlan

        X = rng.normal(size=(60, 4))
        fs = FeatureSpace(X)
        for op in UNARY_OPERATIONS:
            fs.apply_unary(op.name, [0, 1])
        for op in BINARY_OPERATIONS:
            fs.apply_binary(op.name, [0, 1], [2, 3])
        plan = fs.snapshot()
        used = {node.op for node in plan.nodes.values() if node.op is not None}
        assert used == {op.name for op in UNARY_OPERATIONS + BINARY_OPERATIONS}
        restored = TransformationPlan.from_json(plan.to_json())
        np.testing.assert_array_equal(restored.apply(X), plan.apply(X), strict=True)
        # And the indented form round-trips identically too.
        pretty = TransformationPlan.from_json(plan.to_json(indent=2))
        np.testing.assert_array_equal(pretty.apply(X), plan.apply(X), strict=True)

    def test_to_json_indent(self, space):
        fs, _ = space
        compact = fs.snapshot().to_json()
        pretty = fs.snapshot().to_json(indent=2)
        assert "\n" not in compact
        assert pretty.startswith("{\n  ")
