"""Bit-identity proofs for the arena inner loop (PR 5).

The columnar-arena FeatureSpace, the incremental state/MI caches and the
fused estimation passes all promise *exactly* the seed semantics — same
bits, just less work. Each component is checked here against the naive
reference it replaces, and the whole search is checked end to end:
``inner_loop="arena"`` vs ``inner_loop="naive"`` must agree field for
field on every step record, score repr and plan byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clustering import (
    IncrementalClusterer,
    RelevanceCache,
    cluster_features,
)
from repro.core.config import FastFTConfig
from repro.core.novelty import EmbeddingLog, NoveltyEstimator, novelty_distance
from repro.core.predictor import PerformancePredictor
from repro.core.sequence import FeatureSpace
from repro.core.session import SearchSession
from repro.core.state import StateCache, describe_matrix
from repro.ml.mutual_info import mutual_info_with_target
from repro.ml.preprocessing import sanitize_features


def _grown_space(rng, n=120, d=4, steps=5, backend="arena") -> FeatureSpace:
    """A space grown the way a search grows one (ops + a mid-way prune)."""
    X = rng.normal(size=(n, d)) * np.exp(rng.normal(size=(n, d)))
    space = FeatureSpace(X, backend=backend)
    unary = ["square", "log", "tanh"]
    for step in range(steps):
        live = space.live_ids_view
        space.apply_unary(unary[step % len(unary)], [live[step % len(live)]])
        space.apply_binary(
            "add", [live[0]], [live[-1], live[len(live) // 2]],
            max_new=2, rng=rng,
        )
        if step == steps // 2:
            keep = space.live_ids
            rng.shuffle(keep)
            space.prune(keep[: max(2, len(keep) - 3)])
    return space


class TestStateCacheBitIdentity:
    def test_describe_matches_describe_matrix_across_widths(self, rng):
        space = _grown_space(rng)
        cache = StateCache(space)
        live = space.live_ids
        # Full live set, sub-clusters of every width, and singletons, in an
        # order that forces cache reuse across different contexts.
        requests = [live, live[:2], [live[0]], live[1:], [live[-1]], live]
        for fids in requests:
            expected = describe_matrix(space.matrix(fids))
            got = cache.describe(fids)
            assert got.tobytes() == expected.tobytes()

    def test_cached_stats_independent_of_batch_composition(self, rng):
        # A column's stats must not depend on which new-column batch first
        # computed them: warm one cache column-by-column and one in bulk.
        space = _grown_space(rng)
        live = space.live_ids
        one_by_one = StateCache(space)
        for f in live:
            one_by_one.describe([live[0], f])
        bulk = StateCache(space)
        assert bulk.describe(live).tobytes() == one_by_one.describe(live).tobytes()

    def test_sanitize_is_idempotent_on_stored_columns(self, rng):
        # The arena paths skip the second sanitize_features pass the seed
        # applied to already-sanitized columns; that is only sound if the
        # pass is exactly idempotent.
        space = _grown_space(rng)
        matrix = space.matrix()
        assert sanitize_features(matrix).tobytes() == matrix.tobytes()


class TestIncrementalClusteringBitIdentity:
    @pytest.mark.parametrize("n_rows", [120, 600])  # below / above max_rows
    def test_cluster_matches_reference_across_steps(self, rng, n_rows):
        space = _grown_space(rng, n=n_rows)
        y = (space.values(0) + space.values(1) > 0).astype(int)
        clusterer = IncrementalClusterer(
            task="classification", max_clusters=3, n_bins=8, max_rows=256, seed=0
        )
        for _ in range(4):  # repeated calls exercise the cross-step caches
            live = space.live_ids_view
            expected = cluster_features(
                sanitize_features(space.matrix()), y,
                task="classification", max_clusters=3, n_bins=8,
                max_rows=256, seed=0,
            )
            assert clusterer.cluster(space, y, live) == expected
            # Grow and prune between calls so live order flips and new
            # pairs appear (the ordered-pair MI cache must track both).
            space.apply_unary("tanh", [live[0]])
            keep = space.live_ids
            keep.reverse()
            space.prune(keep)

    def test_single_feature_returns_singleton(self, rng):
        X = rng.normal(size=(30, 1))
        space = FeatureSpace(X)
        y = (X[:, 0] > 0).astype(int)
        clusterer = IncrementalClusterer(seed=0)
        assert clusterer.cluster(space, y, space.live_ids) == [[0]]

    def test_unseeded_subsampling_refused(self, rng):
        space = _grown_space(rng, n=600)
        y = (space.values(0) > 0).astype(int)
        clusterer = IncrementalClusterer(seed=None, max_rows=256)
        with pytest.raises(ValueError, match="seed"):
            clusterer.cluster(space, y, space.live_ids)


class TestRelevanceCacheBitIdentity:
    @pytest.mark.parametrize("task", ["classification", "regression"])
    def test_relevance_matches_batch_function(self, rng, task):
        space = _grown_space(rng)
        base = space.values(0) + 0.5 * space.values(1)
        y = (base > 0).astype(int) if task == "classification" else np.asarray(base)
        cache = RelevanceCache(task, n_bins=8)
        for _ in range(3):
            live = space.live_ids_view
            expected = mutual_info_with_target(
                sanitize_features(space.matrix()), y, task=task, n_bins=8
            )
            got = cache.relevance(space, y, live)
            assert got.tobytes() == expected.tobytes()
            space.apply_unary("square", [live[-1]])


class TestFusedEstimationBitIdentity:
    def test_score_with_embedding_matches_separate_calls(self):
        novelty = NoveltyEstimator(40, seed=3)
        for seq in ([1, 7, 9, 22, 2], [1, 5, 2], list(range(1, 30))):
            tokens = np.asarray(seq, dtype=np.int64)
            score, emb = novelty.score_with_embedding(tokens)
            assert score == novelty.score(tokens)
            assert emb.tobytes() == novelty.embedding(tokens).tobytes()

    def test_single_sequence_batch_matches_scalar_paths(self):
        predictor = PerformancePredictor(40, seed=3)
        novelty = NoveltyEstimator(40, seed=3)
        tokens = np.asarray([1, 8, 30, 9, 2], dtype=np.int64)
        assert float(predictor.predict_batch([tokens])[0]) == predictor.predict(tokens)
        assert float(novelty.score_batch([tokens])[0]) == novelty.score(tokens)


class TestEmbeddingLog:
    def test_view_matches_list_rebuild_across_doublings(self, rng):
        log = EmbeddingLog()
        history = []
        assert log.view() is None and len(log) == 0
        for _ in range(37):  # crosses the 8 -> 16 -> 32 -> 64 growths
            emb = rng.normal(size=16)
            history.append(emb)
            log.append(emb)
            assert log.view().tobytes() == np.array(history).tobytes()
        assert len(log) == 37
        probe = rng.normal(size=16)
        assert novelty_distance(probe, log.view()) == novelty_distance(
            probe, np.array(history)
        )


class TestSessionArenaVsNaive:
    @pytest.mark.parametrize("task", ["classification", "regression"])
    def test_full_search_bit_identical(self, rng, task):
        X = rng.normal(size=(90, 4))
        if task == "classification":
            y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] > 0).astype(int)
        else:
            y = X[:, 0] * X[:, 1] + 0.5 * X[:, 2] ** 2
        kwargs = dict(
            episodes=3, steps_per_episode=2, cold_start_episodes=1,
            retrain_every_episodes=1, component_epochs=2, trigger_warmup=2,
            cv_splits=3, rf_estimators=4, max_clusters=3, mi_max_rows=64,
            seed=11,
        )
        results = {}
        for inner_loop in ("naive", "arena"):
            session = SearchSession(
                X, y, task, config=FastFTConfig(inner_loop=inner_loop, **kwargs)
            )
            results[inner_loop] = session.run()
        naive, arena = results["naive"], results["arena"]
        assert repr(naive.base_score) == repr(arena.base_score)
        assert repr(naive.best_score) == repr(arena.best_score)
        assert naive.plan.to_json() == arena.plan.to_json()
        assert len(naive.history) == len(arena.history)
        for a, b in zip(naive.history, arena.history):
            assert a.deterministic_dict() == b.deterministic_dict()
        assert naive.n_downstream_calls == arena.n_downstream_calls
