"""Tests for the synthetic dataset generators and the 23-dataset registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.registry import DATASET_SPECS, dataset_names, load_dataset
from repro.data.synthesis import (
    LatentInteraction,
    make_classification,
    make_detection,
    make_regression,
)
from repro.ml.evaluation import DownstreamEvaluator


class TestGenerators:
    def test_classification_shapes_and_balance(self):
        X, y = make_classification(600, 8, n_classes=3, seed=0)
        assert X.shape == (600, 8)
        counts = np.bincount(y)
        assert len(counts) == 3
        assert counts.min() > 150  # quantile binning keeps classes balanced

    def test_classification_learnable(self):
        X, y = make_classification(500, 6, seed=1)
        score = DownstreamEvaluator("classification", n_splits=3)(X, y)
        assert score > 0.55  # informative, but not trivial

    def test_regression_normalized(self):
        X, y = make_regression(400, 10, seed=0)
        assert abs(y.mean()) < 0.1
        assert y.std() == pytest.approx(1.0, abs=0.05)

    def test_detection_contamination(self):
        X, y = make_detection(2000, 5, contamination=0.08, seed=0)
        assert 0.04 < y.mean() < 0.13
        assert set(np.unique(y)) == {0, 1}

    def test_detection_auc_headroom(self):
        """Baseline AUC should be decent but leave room for engineered features."""
        X, y = make_detection(1500, 6, seed=3)
        auc = DownstreamEvaluator("detection", n_splits=3)(X, y)
        assert 0.6 < auc < 0.999

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            make_classification(100, 4, n_classes=1)
        with pytest.raises(ValueError):
            make_detection(100, 4, contamination=0.9)

    def test_seed_determinism(self):
        X1, y1 = make_classification(100, 5, seed=42)
        X2, y2 = make_classification(100, 5, seed=42)
        assert np.allclose(X1, X2)
        assert (y1 == y2).all()

    def test_seed_sensitivity(self):
        X1, _ = make_classification(100, 5, seed=1)
        X2, _ = make_classification(100, 5, seed=2)
        assert not np.allclose(X1, X2)

    def test_all_generators_finite(self):
        for maker in (make_classification, make_regression, make_detection):
            X, y = maker(200, 7, seed=0)
            assert np.isfinite(X).all()

    @given(st.sampled_from(["product", "ratio", "log_product", "square_sum", "diff_square"]))
    @settings(max_examples=10, deadline=None)
    def test_interaction_forms_finite(self, form):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        term = LatentInteraction(form, 0, 1, 1.0)
        assert np.isfinite(term.evaluate(X)).all()

    def test_unknown_interaction_form_raises(self):
        with pytest.raises(ValueError):
            LatentInteraction("xor", 0, 1, 1.0).evaluate(np.ones((5, 2)))


class TestRegistry:
    def test_has_24_named_datasets(self):
        # 23 Table I datasets + adult counted in the AutoML block = 24 rows.
        assert len(DATASET_SPECS) == 24

    def test_task_partition(self):
        assert len(dataset_names("classification")) == 13
        assert len(dataset_names("regression")) == 7
        assert len(dataset_names("detection")) == 4

    def test_feature_counts_match_paper(self):
        assert DATASET_SPECS["cardiovascular"].n_features == 12
        assert DATASET_SPECS["volkert"].n_features == 181
        assert DATASET_SPECS["smtp"].n_features == 3
        assert DATASET_SPECS["openml_618"].n_features == 50

    def test_sample_counts_match_paper(self):
        assert DATASET_SPECS["pima_indian"].n_samples == 768
        assert DATASET_SPECS["albert"].n_samples == 425240
        assert DATASET_SPECS["wbc"].n_samples == 278

    def test_load_scales_samples_not_features(self):
        ds = load_dataset("cardiovascular", scale=0.1, seed=0)
        assert ds.n_samples == 500
        assert ds.n_features == 12

    def test_max_samples_cap(self):
        ds = load_dataset("albert", scale=1.0, seed=0, max_samples=1000)
        assert ds.n_samples == 1000

    def test_minimum_floor(self):
        ds = load_dataset("wbc", scale=0.0001, seed=0)
        assert ds.n_samples >= 60

    def test_named_features(self):
        ds = load_dataset("cardiovascular", scale=0.05, seed=0)
        assert "Weight" in ds.feature_names
        assert "DBP" in ds.feature_names
        assert len(ds.feature_names) == ds.n_features

    def test_generic_names_fill(self):
        ds = load_dataset("jannis", scale=0.01, seed=0)
        assert ds.feature_names[0] == "f1"
        assert len(ds.feature_names) == 55

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("wbc", scale=0.0)

    def test_same_name_same_seed_deterministic(self):
        a = load_dataset("thyroid", scale=0.1, seed=5)
        b = load_dataset("thyroid", scale=0.1, seed=5)
        assert np.allclose(a.X, b.X)

    def test_different_datasets_differ(self):
        a = load_dataset("openml_589", scale=0.2, seed=0)
        b = load_dataset("openml_620", scale=0.2, seed=0)
        assert a.X.shape == b.X.shape  # same spec shape
        assert not np.allclose(a.X, b.X)

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_dataset_loads(self, name):
        ds = load_dataset(name, scale=0.02, seed=0, max_samples=200)
        assert ds.n_samples >= 60
        assert np.isfinite(ds.X).all()
        assert ds.task in ("classification", "regression", "detection")
