"""Tests for the repro.api facade: search, caching, and batch runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core import FastFTConfig
from repro.data import Dataset
from repro.ml.evaluation import DownstreamEvaluator

TINY = dict(
    episodes=2,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=1,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=3,
    max_clusters=3,
    mi_max_rows=64,
    seed=0,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(110, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    return X, y


class TestSearch:
    def test_search_with_keyword_overrides(self, problem):
        X, y = problem
        result = api.search(X, y, "classification", **TINY)
        assert result.best_score >= result.base_score
        assert result.config.episodes == 2
        assert len(result.history) == 4

    def test_search_with_config_object_and_override(self, problem):
        X, y = problem
        cfg = FastFTConfig(**TINY)
        result = api.search(X, y, "classification", config=cfg, seed=1)
        assert result.config.seed == 1
        assert cfg.seed == 0  # the caller's config is not mutated

    def test_search_matches_engine(self, problem):
        from repro.core import FastFT

        X, y = problem
        a = api.search(X, y, "classification", **TINY)
        b = FastFT(FastFTConfig(**TINY)).fit(X, y, task="classification")
        assert a.best_score == b.best_score
        assert [r.op_name for r in a.history] == [r.op_name for r in b.history]

    def test_fit_transform_shape(self, problem):
        X, y = problem
        out = api.fit_transform(X, y, "classification", **TINY)
        assert out.shape[0] == X.shape[0]
        assert np.isfinite(out).all()

    def test_search_time_budget_kwarg(self, problem):
        X, y = problem
        result = api.search(X, y, "classification", time_budget=1e-9, **TINY)
        assert len(result.history) == 1

    def test_search_checkpoint_kwarg(self, problem, tmp_path):
        from repro.core import SearchSession

        X, y = problem
        path = str(tmp_path / "api.ckpt")
        result = api.search(X, y, "classification", checkpoint_path=path, **TINY)
        resumed = SearchSession.resume(path)
        assert resumed.done
        assert resumed.result().best_score == result.best_score


class TestEvaluationCache:
    def test_repeated_plan_workload_reduces_downstream_calls(self, problem):
        """Acceptance: a repeated-plan workload must hit the cache instead of
        re-running cross-validation."""
        X, y = problem
        cache = api.EvaluationCache()
        first = api.search(X, y, "classification", cache=cache, **TINY)
        assert first.n_downstream_calls > 0
        second = api.search(X, y, "classification", cache=cache, **TINY)
        # The identical (seeded) search replays identical feature matrices:
        # every downstream evaluation is served from the cache.
        assert second.n_downstream_calls < first.n_downstream_calls
        assert second.best_score == first.best_score
        assert cache.hits >= first.n_downstream_calls
        assert cache.hit_rate > 0

    def test_cached_evaluator_exact_scores(self, problem):
        X, y = problem
        cache = api.EvaluationCache()
        inner = DownstreamEvaluator("classification", n_splits=3, seed=0)
        cached = cache.wrap(inner)
        a = cached(X, y)
        b = cached(X, y)
        assert a == b
        assert inner.n_calls == 1  # second call never reached the oracle
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_evaluators_do_not_collide(self, problem):
        X, y = problem
        cache = api.EvaluationCache()
        three = cache.wrap(DownstreamEvaluator("classification", n_splits=3, seed=0))
        four = cache.wrap(DownstreamEvaluator("classification", n_splits=4, seed=0))
        s3 = three(X, y)
        s4 = four(X, y)
        assert cache.misses == 2  # different fingerprints -> different keys
        assert s3 != s4 or len(cache) == 2

    def test_distinct_matrices_do_not_collide(self, problem):
        X, y = problem
        cache = api.EvaluationCache()
        cached = cache.wrap(DownstreamEvaluator("classification", n_splits=3, seed=0))
        cached(X, y)
        cached(X + 1.0, y)
        assert cache.misses == 2

    def test_eviction_respects_max_entries(self):
        cache = api.EvaluationCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)
        assert len(cache) == 2
        assert cache._entries.get("a") is None  # oldest evicted

    def test_eviction_is_fifo_and_survivors_hit(self):
        cache = api.EvaluationCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)  # evicts "a", keeps "b" and "c"
        assert cache.get("b") == 2.0
        assert cache.get("c") == 3.0
        assert cache.hits == 2 and cache.misses == 0

    def test_rewriting_existing_key_does_not_evict(self):
        cache = api.EvaluationCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("b", 4.0)  # overwrite, not a new entry
        assert len(cache) == 2
        assert cache.get("a") == 1.0 and cache.get("b") == 4.0

    def test_hit_rate_accounts_for_misses_after_eviction(self):
        cache = api.EvaluationCache(max_entries=1)
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0  # hit
        cache.put("b", 2.0)  # evicts "a"
        assert cache.get("a") is None  # miss on the evicted key
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_clear_resets_entries_and_counters(self):
        cache = api.EvaluationCache(max_entries=2)
        cache.put("a", 1.0)
        cache.get("a")
        cache.get("missing")
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate == 0.0
        # The cache keeps working after clear().
        cache.put("a", 5.0)
        assert cache.get("a") == 5.0

    def test_clear(self, problem):
        X, y = problem
        cache = api.EvaluationCache()
        cached = cache.wrap(DownstreamEvaluator("classification", n_splits=3, seed=0))
        cached(X, y)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            api.EvaluationCache(max_entries=0)

    def test_cache_survives_checkpoint(self, problem, tmp_path):
        from repro.core import SearchSession

        X, y = problem
        cache = api.EvaluationCache()
        session = api.session(X, y, "classification", cache=cache, **TINY)
        session.run(until=2)
        path = str(tmp_path / "cached.ckpt")
        session.checkpoint(path)
        resumed = SearchSession.resume(path)
        resumed_cache = resumed._evaluator.cache
        assert len(resumed_cache) == len(cache)
        resumed.run()
        assert resumed.finished


class TestRunBatch:
    def test_batch_over_tuples_and_datasets(self, problem):
        X, y = problem
        ds = Dataset(name="named", X=X, y=y, task="classification")
        results = api.run_batch([("tup", X, y, "classification"), ds], **TINY)
        assert list(results) == ["tup", "named"]
        assert all(r.best_score >= r.base_score for r in results.values())

    def test_batch_shares_cache_across_jobs(self, problem):
        X, y = problem
        cache = api.EvaluationCache()
        results = api.run_batch(
            [("a", X, y, "classification"), ("b", X, y, "classification")],
            cache=cache,
            **TINY,
        )
        # Identical jobs: the second one is served almost entirely from cache.
        assert results["b"].n_downstream_calls < results["a"].n_downstream_calls

    def test_batch_mapping_jobs_and_factory(self, problem):
        X, y = problem
        seen: list[str] = []

        def factory(name):
            from repro.core import HistoryCollector

            seen.append(name)
            return [HistoryCollector()]

        results = api.run_batch(
            [{"name": "m1", "X": X, "y": y, "task": "classification"}],
            callbacks_factory=factory,
            **TINY,
        )
        assert seen == ["m1"]
        assert "m1" in results

    def test_batch_duplicate_names_raise(self, problem):
        X, y = problem
        with pytest.raises(ValueError):
            api.run_batch(
                [("dup", X, y, "classification"), ("dup", X, y, "classification")],
                **TINY,
            )
