"""repro.parallel: orchestrated sweeps/batches vs the serial reference.

The load-bearing assertions are the bit-identity ones: a sweep seed run
through the process pool must reproduce the serial run of that seed
field-for-field (plan JSON, scores, deterministic step history). Process
pools on a 1-core box are slow but correct, so these tests keep the
configs tiny.
"""

from __future__ import annotations

import io
import pickle

import numpy as np
import pytest

from repro import api
from repro.core import HistoryCollector, VerboseLogger
from repro.core.parallel import SearchOrchestrator, SweepResult, _payload_ok
from repro.core.result import FastFTResult
from repro.ml.cache import EvaluationCache, SharedEvaluationCache

def _racing_cache_writer(shared, X, y, barrier, out) -> None:
    """Child-process body for the concurrent-writer race test: evaluate
    the same matrix through the shared cache, then hammer the same key
    with redundant puts to widen the race window."""
    from repro.core.config import FastFTConfig
    from repro.core.session import make_default_evaluator

    evaluator = shared.wrap(
        make_default_evaluator("classification", FastFTConfig(cv_splits=2))
    )
    barrier.wait()
    score = evaluator(X, y)
    key = shared.signature(X, y, evaluator.fingerprint)
    for _ in range(50):
        shared.put(key, score)
    out.put((key, repr(score)))


TINY = dict(
    episodes=2,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=2,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=4,
    max_clusters=3,
    mi_max_rows=64,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(100, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    return X, y


def _identity_fields(result: FastFTResult) -> tuple:
    return (
        result.plan.to_json(),
        repr(result.base_score),
        repr(result.best_score),
        [r.deterministic_dict() for r in result.history],
    )


class TestSweep:
    def test_serial_sweep_matches_individual_searches(self, problem):
        X, y = problem
        sweep = api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=1, **TINY)
        assert sweep.seeds == [0, 1]
        for seed in sweep.seeds:
            reference = api.search(X, y, "classification", seed=seed, **TINY)
            assert _identity_fields(sweep[seed]) == _identity_fields(reference)

    def test_parallel_sweep_bit_identical_to_serial(self, problem):
        X, y = problem
        serial = api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=1, **TINY)
        parallel = api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=2, **TINY)
        for seed in serial.seeds:
            assert _identity_fields(parallel[seed]) == _identity_fields(serial[seed])

    def test_sweep_statistics_and_iteration(self, problem):
        X, y = problem
        sweep = api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=1, **TINY)
        scores = sweep.scores
        assert scores.shape == (2,)
        assert sweep.score_mean == pytest.approx(scores.mean())
        assert sweep.score_std == pytest.approx(scores.std())
        assert len(sweep) == 2
        assert [r.best_score for r in sweep] == [sweep[0].best_score, sweep[1].best_score]
        assert sweep.best is sweep[sweep.best_seed]
        summary = sweep.summary()
        assert "mean" in summary and "seed" in summary

    def test_best_seed_tie_break_is_seed_order(self):
        def fake(score: float) -> FastFTResult:
            return FastFTResult(
                base_score=0.1, best_score=score, plan=None, history=[],
                time=None, n_downstream_calls=0, config=None, task="classification",
            )

        sweep = SweepResult(
            task="classification",
            seeds=[5, 3, 9],
            results={5: fake(0.7), 3: fake(0.7), 9: fake(0.4)},
        )
        # Both 5 and 3 hit the max; the caller's seed order breaks the tie.
        assert sweep.best_seed == 5

    def test_sweep_rejects_bad_seed_lists(self, problem):
        X, y = problem
        with pytest.raises(ValueError, match="non-empty"):
            api.sweep(X, y, seeds=[], **TINY)
        with pytest.raises(ValueError, match="unique"):
            api.sweep(X, y, seeds=[1, 1], **TINY)
        with pytest.raises(ValueError, match="n_jobs"):
            SearchOrchestrator(0)

    def test_sweep_merges_shared_cache_into_local(self, problem):
        X, y = problem
        cache = EvaluationCache()
        api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=2, cache=cache, **TINY)
        assert len(cache) > 0
        # A rerun seeded from the merged cache answers the same oracle
        # calls without any real CV work.
        rerun = api.sweep(X, y, "classification", seeds=[0, 1], n_jobs=1, cache=cache, **TINY)
        assert rerun.n_downstream_calls == 0

    def test_callbacks_factory_bridge_under_parallelism(self, problem):
        X, y = problem
        collectors: dict[str, HistoryCollector] = {}
        streams: dict[str, io.StringIO] = {}

        def factory(label):
            collectors[label] = HistoryCollector()
            streams[label] = io.StringIO()
            return [collectors[label], VerboseLogger(stream=streams[label])]

        sweep = api.sweep(
            X, y, "classification", seeds=[0, 1], n_jobs=2,
            callbacks_factory=factory, **TINY,
        )
        assert set(collectors) == {"seed=0", "seed=1"}
        for seed in sweep.seeds:
            collector = collectors[f"seed={seed}"]
            result = sweep[seed]
            # The relayed step stream is the run's real history.
            assert [r.deterministic_dict() for r in collector.records] == [
                r.deterministic_dict() for r in result.history
            ]
            assert len(collector.episodes) == TINY["episodes"]
            assert collector.episodes[-1]["best_score"] == pytest.approx(result.best_score)
            out = streams[f"seed={seed}"].getvalue()
            assert "[FastFT] finished" in out  # on_finish fired exactly once
            assert out.count("[FastFT] finished") == 1


class TestRunBatchParallel:
    def test_parallel_batch_preserves_input_order_and_results(self, problem):
        X, y = problem
        jobs = [("b_first", X, y, "classification"), ("a_second", X, y, "classification")]
        serial = api.run_batch(jobs, n_jobs=1, **TINY)
        parallel = api.run_batch(jobs, n_jobs=2, **TINY)
        assert list(parallel) == ["b_first", "a_second"] == list(serial)
        for name in serial:
            assert _identity_fields(parallel[name]) == _identity_fields(serial[name])

    def test_duplicate_names_fail_fast_on_both_paths(self, problem):
        X, y = problem
        ran: list[str] = []

        def factory(name):
            ran.append(name)
            return []

        jobs = [
            ("ok", X, y, "classification"),
            ("dup", X, y, "classification"),
            ("dup", X, y, "classification"),
        ]
        for n_jobs in (1, 2):
            with pytest.raises(ValueError, match="Duplicate job name 'dup'"):
                api.run_batch(jobs, n_jobs=n_jobs, callbacks_factory=factory, **TINY)
        # Pre-scan: the error fires before any job launches (the factory
        # would have been consulted for 'ok' first otherwise).
        assert ran == []

    def test_empty_batch(self):
        assert api.run_batch([], n_jobs=2, **TINY) == {}

    def test_time_budget_is_enforced_inside_workers(self, problem):
        X, y = problem
        results = api.run_batch(
            [("budgeted", X, y, "classification")],
            n_jobs=1,
            time_budget=1e-6,
            **TINY,
        )
        # The budget trips after the first step, so the search cannot have
        # run to completion.
        cfg_steps = TINY["episodes"] * TINY["steps_per_episode"]
        assert len(results["budgeted"].history) < cfg_steps


class TestFallbackAndCache:
    def test_unpicklable_payload_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            assert _payload_ok({"bad": lambda: None}) is False
        assert _payload_ok({"fine": np.arange(3)}) is True

    def test_forced_fallback_still_runs_and_matches_serial(self, problem, monkeypatch):
        import repro.core.parallel as parallel_mod

        X, y = problem
        serial = api.sweep(X, y, "classification", seeds=[0], n_jobs=1, **TINY)
        monkeypatch.setattr(parallel_mod, "_payload_ok", lambda payload: False)
        demoted = api.sweep(X, y, "classification", seeds=[0], n_jobs=2, **TINY)
        assert _identity_fields(demoted[0]) == _identity_fields(serial[0])

    def test_shared_cache_roundtrip_and_pickle(self):
        shared = SharedEvaluationCache(max_entries=4)
        try:
            key = shared.signature(np.arange(6.0).reshape(2, 3), np.array([0, 1]))
            assert shared.get(key) is None and shared.misses == 1
            shared.put(key, 0.5)
            assert shared.get(key) == 0.5 and shared.hits == 1
            assert len(shared) == 1

            # Same key space as the local cache.
            local = EvaluationCache()
            assert local.signature(np.arange(6.0).reshape(2, 3), np.array([0, 1])) == key

            # Pickling ships the proxy only; the clone reads the same store.
            clone = pickle.loads(pickle.dumps(shared))
            assert clone.get(key) == 0.5
            assert clone.hits == 1 and clone.misses == 0  # fresh counters
            clone.put("other", 1.0)
            assert shared.get("other") == 1.0

            # Eviction respects max_entries under the shared store too.
            for i in range(6):
                shared.put(f"k{i}", float(i))
            assert len(shared) <= 4

            merged = EvaluationCache()
            assert shared.merge_into(merged) == len(shared)
            seeded = SharedEvaluationCache(max_entries=8)
            try:
                seeded.seed_from(merged)
                assert len(seeded) == len(merged)
            finally:
                seeded.shutdown()
        finally:
            shared.shutdown()

    def test_shared_cache_wrap_skips_real_evaluation_on_hit(self, problem):
        from repro.core.session import make_default_evaluator
        from repro.core.config import FastFTConfig

        X, y = problem
        shared = SharedEvaluationCache()
        try:
            evaluator = shared.wrap(
                make_default_evaluator("classification", FastFTConfig(cv_splits=3))
            )
            first = evaluator(X, y)
            calls_after_first = evaluator.n_calls
            second = evaluator(X, y)
            assert second == first
            assert evaluator.n_calls == calls_after_first  # served from the store
        finally:
            shared.shutdown()

    def test_shared_cache_concurrent_writers_same_key_agree(self, problem):
        """Writers racing puts on one content-signature key are benign:
        the evaluator is deterministic, so every writer computes the same
        score and last-write-wins leaves that score — merge semantics
        yield a single consistent entry, never a torn or mixed value."""
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")

        X, y = problem
        shared = SharedEvaluationCache()
        try:
            barrier = ctx.Barrier(3)
            out = ctx.Queue()
            procs = [
                ctx.Process(target=_racing_cache_writer, args=(shared, X, y, barrier, out))
                for _ in range(3)
            ]
            for p in procs:
                p.start()
            reports = [out.get(timeout=120) for _ in procs]
            for p in procs:
                p.join(timeout=120)
                assert p.exitcode == 0

            keys = {key for key, _ in reports}
            assert len(keys) == 1, "writers disagreed on the content signature"
            (key,) = keys
            scores = {score_repr for _, score_repr in reports}
            assert len(scores) == 1, f"racing writers produced divergent scores: {scores}"
            (score_repr,) = scores

            # The store holds exactly that score, and folding it into a
            # local cache reproduces it bit-for-bit.
            assert repr(shared.get(key)) == score_repr
            local = EvaluationCache()
            shared.merge_into(local)
            assert repr(local.get(key)) == score_repr
        finally:
            shared.shutdown()

    def test_session_view_request_stop_warns(self):
        from repro.core.parallel import SessionView

        view = SessionView(
            label="seed=0", task="classification", episode=0, global_step=1,
            total_steps=4, n_features=4, n_downstream_calls=1,
            base_score=0.5, best_score=0.6,
        )
        with pytest.warns(RuntimeWarning, match="no-op"):
            view.request_stop("nope")
