"""Shared serve-layer fixtures: one tiny search reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api

TINY = dict(
    episodes=2,
    steps_per_episode=2,
    cold_start_episodes=1,
    retrain_every_episodes=1,
    component_epochs=1,
    trigger_warmup=2,
    cv_splits=3,
    rf_estimators=3,
    max_clusters=3,
    mi_max_rows=64,
    seed=0,
)


@pytest.fixture(scope="session")
def serve_problem():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(110, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(scope="session")
def search_result(serve_problem):
    X, y = serve_problem
    return api.search(X, y, "classification", **TINY)


@pytest.fixture(scope="session")
def artifact(search_result, serve_problem):
    X, y = serve_problem
    return search_result.to_artifact(X, y)
