"""Serving observability: /metrics, latency quantiles, access log."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve import InferenceServer, PipelineService


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _get_raw(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode(), dict(resp.headers)


class TestMetricsEndpoint:
    def test_content_type_and_format(self, artifact, serve_problem):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            _post(server.url + "/predict", {"rows": X[:3].tolist()})
            body, headers = _get_raw(server.url + "/metrics")
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            assert "# TYPE serve_request_seconds histogram" in body
            assert 'serve_requests_total{kind="predict"} 1' in body
            assert 'serve_request_seconds_bucket{le="+Inf"}' in body
            assert "serve_batch_rows_sum 3" in body

    def test_counters_monotonic_across_scrapes(self, artifact, serve_problem):
        X, _ = serve_problem
        name = 'serve_http_responses_total{path="/predict",status="200"}'

        def scrape(server) -> dict[str, float]:
            body, _ = _get_raw(server.url + "/metrics")
            out = {}
            for line in body.splitlines():
                if line.startswith("#"):
                    continue
                key, _, value = line.rpartition(" ")
                out[key] = float(value)
            return out

        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            _post(server.url + "/predict", {"rows": X[:1].tolist()})
            first = scrape(server)
            _post(server.url + "/predict", {"rows": X[:1].tolist()})
            second = scrape(server)
            assert second[name] == first[name] + 1
            # Every counter and histogram series is monotone non-decreasing.
            for key, value in first.items():
                if "_total" in key or "_bucket" in key or "_count" in key:
                    assert second[key] >= value, key

    def test_error_requests_counted(self, artifact):
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    urllib.request.Request(server.url + "/predict", data=b"not json"),
                    timeout=10,
                )
            body, _ = _get_raw(server.url + "/metrics")
            assert 'serve_http_responses_total{path="/predict",status="400"} 1' in body
            # Unknown paths are clamped to "other" so metric cardinality
            # stays bounded under path scans.
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/scan-me", timeout=10)
            body, _ = _get_raw(server.url + "/metrics")
            assert 'serve_http_responses_total{path="other",status="404"} 1' in body


class TestLatencyQuantiles:
    def test_healthz_reports_quantiles(self, artifact, serve_problem):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            for i in range(4):
                _post(server.url + "/predict", {"rows": X[i : i + 2].tolist()})
            body, _ = _get_raw(server.url + "/healthz")
            batcher = json.loads(body)["batcher"]
            for key in (
                "request_latency_p50",
                "request_latency_p99",
                "batch_requests_p50",
                "batch_requests_p99",
                "batch_rows_p50",
                "batch_rows_p99",
            ):
                assert key in batcher, key
            assert 0 < batcher["request_latency_p50"] <= batcher["request_latency_p99"]
            assert batcher["batch_rows_p50"] >= 1

    def test_stats_quantiles_in_process(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(artifact, max_wait_ms=0.0)
        try:
            for _ in range(3):
                service.predict(X[:2])
            stats = service.batcher.stats()
            assert stats["requests"] == 3
            assert stats["request_latency_p99"] >= stats["request_latency_p50"] > 0
            assert stats["batch_rows_p50"] == 2
        finally:
            service.close()


class TestAccessLog:
    def test_opt_in_stream_receives_lines(self, artifact, serve_problem):
        X, _ = serve_problem
        log = io.StringIO()
        with InferenceServer(
            artifact, port=0, max_wait_ms=0.5, access_log=log
        ) as server:
            _post(server.url + "/predict", {"rows": X[:1].tolist()})
            _get_raw(server.url + "/healthz")
        lines = [line for line in log.getvalue().splitlines() if line]
        assert any('"POST /predict' in line for line in lines)
        assert any('"GET /healthz' in line for line in lines)

    def test_default_is_silent(self, artifact, serve_problem, capsys):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            _post(server.url + "/predict", {"rows": X[:1].tolist()})
        captured = capsys.readouterr()
        assert "POST /predict" not in captured.err
        assert "POST /predict" not in captured.out
