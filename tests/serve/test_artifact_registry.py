"""Tests for PipelineArtifact persistence and the ArtifactRegistry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro._version import __version__
from repro.serve import ARTIFACT_FORMAT, ArtifactRegistry, PipelineArtifact


class TestArtifact:
    def test_manifest_provenance(self, artifact, search_result):
        m = artifact.manifest
        assert m["format"] == ARTIFACT_FORMAT
        assert m["repro_version"] == __version__
        assert m["task"] == "classification"
        assert m["seed"] == search_result.config.seed
        assert m["best_score"] == search_result.best_score
        assert len(m["dataset_fingerprint"]) == 64
        assert m["expressions"] == search_result.plan.expressions()

    def test_transform_matches_interpreter(self, artifact, search_result, serve_problem):
        X, _ = serve_problem
        np.testing.assert_array_equal(
            artifact.transform(X), search_result.plan.apply(X), strict=True
        )

    def test_predict_uses_fitted_model(self, artifact, serve_problem):
        X, y = serve_problem
        preds = artifact.predict(X)
        assert preds.shape == y.shape
        # Fitted on this training data: far better than chance.
        assert (preds == y).mean() > 0.6
        proba = artifact.predict_proba(X)
        assert proba.shape == (len(y), 2)

    def test_save_load_round_trip(self, artifact, serve_problem, tmp_path):
        X, _ = serve_problem
        artifact.save(tmp_path / "art")
        loaded = PipelineArtifact.load(tmp_path / "art")
        np.testing.assert_array_equal(loaded.transform(X), artifact.transform(X), strict=True)
        np.testing.assert_array_equal(loaded.predict(X), artifact.predict(X), strict=True)
        assert loaded.manifest == artifact.manifest
        assert loaded.expressions() == artifact.expressions()

    def test_saved_plan_diffs_cleanly(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "art")
        text = (path / "plan.json").read_text()
        assert text.endswith("\n")
        assert text.startswith("{\n")  # indent=2 formatting

    def test_resave_is_hash_stable(self, artifact, tmp_path):
        artifact.save(tmp_path / "a")
        first = PipelineArtifact.load(tmp_path / "a")
        first.save(tmp_path / "b")
        a = json.loads((tmp_path / "a" / "manifest.json").read_text())
        b = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert a["content_hash"] == b["content_hash"]

    def test_tampered_plan_fails_verification(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "art")
        plan_file = path / "plan.json"
        plan_file.write_text(plan_file.read_text() + " ")  # any byte change
        with pytest.raises(ValueError, match="content-hash"):
            PipelineArtifact.load(path)
        # verify=False loads anyway (forensics escape hatch).
        assert PipelineArtifact.load(path, verify=False) is not None

    def test_tampered_manifest_fails_verification(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "art")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["best_score"] = 0.999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="content-hash"):
            PipelineArtifact.load(path)

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PipelineArtifact.load(tmp_path / "nope")

    def test_newer_version_refused(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "art")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer"):
            PipelineArtifact.load(path, verify=False)

    def test_model_free_artifact(self, search_result, serve_problem):
        X, _ = serve_problem
        bare = PipelineArtifact(search_result.plan, "classification")
        assert bare.transform(X).shape[1] == search_result.plan.n_features
        with pytest.raises(RuntimeError, match="no downstream model"):
            bare.predict(X)

    def test_bad_task_rejected(self, search_result):
        with pytest.raises(ValueError, match="task"):
            PipelineArtifact(search_result.plan, "clustering")


class TestRegistry:
    def test_publish_get_round_trip(self, artifact, serve_problem, tmp_path):
        X, _ = serve_problem
        reg = ArtifactRegistry(tmp_path / "reg")
        assert reg.publish(artifact, "demo") == "v0001"
        loaded = reg.get("demo")
        np.testing.assert_array_equal(loaded.predict(X), artifact.predict(X), strict=True)

    def test_versions_are_monotonic(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        assert reg.publish(artifact, "demo") == "v0001"
        assert reg.publish(artifact, "demo") == "v0002"
        assert reg.versions("demo") == ["v0001", "v0002"]
        assert reg.latest("demo") == "v0002"

    def test_get_by_version_forms(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        reg.publish(artifact, "demo")
        reg.publish(artifact, "demo")
        for version in (1, "1", "v0001"):
            got = reg.get("demo", version=version)
            assert got.manifest["content_hash"] == artifact.manifest["content_hash"]

    def test_tag_promotion(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        reg.publish(artifact, "demo", tag="prod")
        reg.publish(artifact, "demo")
        assert reg.tags("demo") == {"prod": "v0001"}
        # latest moved on, prod did not.
        assert reg.latest("demo") == "v0002"
        assert reg.get("demo", tag="prod").manifest == reg.get("demo", version=1).manifest
        reg.promote("demo", 2, "prod")
        assert reg.tags("demo") == {"prod": "v0002"}

    def test_list_inventory(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        reg.publish(artifact, "a", tag="prod")
        reg.publish(artifact, "b")
        inventory = reg.list()
        assert set(inventory) == {"a", "b"}
        assert inventory["a"]["tags"] == {"prod": "v0001"}
        assert inventory["b"]["latest"] == "v0001"

    def test_unknown_lookups_raise(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        with pytest.raises(KeyError, match="No artifact"):
            reg.latest("ghost")
        reg.publish(artifact, "demo")
        with pytest.raises(KeyError, match="No version"):
            reg.get("demo", version=7)
        with pytest.raises(KeyError, match="No tag"):
            reg.get("demo", tag="prod")
        with pytest.raises(KeyError, match="unpublished"):
            reg.promote("demo", 9, "prod")

    def test_invalid_names_rejected(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        for bad in ("../escape", "", ".hidden", "a/b"):
            with pytest.raises(ValueError, match="Invalid artifact name"):
                reg.publish(artifact, bad)

    def test_bad_tag_leaves_no_orphan_version(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        with pytest.raises(ValueError, match="Invalid tag"):
            reg.publish(artifact, "demo", tag="bad tag!")
        assert reg.versions("demo") == []

    def test_version_and_tag_mutually_exclusive(self, artifact, tmp_path):
        reg = ArtifactRegistry(tmp_path / "reg")
        reg.publish(artifact, "demo", tag="prod")
        with pytest.raises(ValueError, match="not both"):
            reg.get("demo", version=1, tag="prod")

    def test_no_partial_version_on_failed_publish(self, artifact, tmp_path, monkeypatch):
        reg = ArtifactRegistry(tmp_path / "reg")

        def boom(path):
            raise OSError("disk full")

        monkeypatch.setattr(type(artifact), "save", lambda self, p: boom(p))
        with pytest.raises(OSError):
            reg.publish(artifact, "demo")
        assert reg.versions("demo") == []
        assert not any((tmp_path / "reg" / "demo").glob(".tmp-*"))
