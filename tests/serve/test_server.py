"""Tests for the inference server: sockets, micro-batching, error paths."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ArtifactRegistry, InferenceServer, PipelineService


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


class TestEndToEnd:
    def test_search_publish_serve_predict(self, artifact, serve_problem, tmp_path):
        """The acceptance path: search → artifact → registry round trip →
        real-socket /predict with correct scores."""
        X, _ = serve_problem
        registry = ArtifactRegistry(tmp_path / "reg")
        registry.publish(artifact, "e2e", tag="prod")
        served = registry.get("e2e", tag="prod")
        expected = artifact.predict(X[:7])
        with InferenceServer(served, port=0, max_wait_ms=0.5) as server:
            body = _post(server.url + "/predict", {"rows": X[:7].tolist()})
            assert body["predictions"] == expected.tolist()
            assert np.asarray(body["proba"]).shape == (7, 2)

    def test_transform_endpoint_matches_plan(self, artifact, serve_problem):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            body = _post(server.url + "/transform", {"rows": X[:5].tolist()})
            np.testing.assert_allclose(
                np.asarray(body["features"]), artifact.transform(X[:5]), rtol=0, atol=0
            )

    def test_healthz(self, artifact):
        with InferenceServer(artifact, port=0) as server:
            body = _get(server.url + "/healthz")
            assert body["status"] == "ok"
            assert body["artifact"]["task"] == "classification"
            assert "content_hash" in body["artifact"]
            assert body["batcher"]["requests"] == 0

    def test_error_paths(self, artifact, serve_problem):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            cases = [
                (server.url + "/predict", b"not json"),
                (server.url + "/predict", json.dumps({"wrong": 1}).encode()),
                (server.url + "/predict", json.dumps({"rows": [[1.0, 2.0]]}).encode()),
                (server.url + "/predict", json.dumps({"rows": [[1, 2, 3, None]]}).encode()),
            ]
            for url, data in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        urllib.request.Request(url, data=data), timeout=10
                    )
                assert err.value.code == 400
                assert "error" in json.loads(err.value.read())
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope", timeout=10)
            assert err.value.code == 404
            # The server keeps serving after every error.
            ok = _post(server.url + "/predict", {"rows": X[:1].tolist()})
            assert len(ok["predictions"]) == 1

    def test_max_requests_shutdown(self, artifact):
        import time

        server = InferenceServer(artifact, port=0, max_requests=2).start()
        _get(server.url + "/healthz")
        _get(server.url + "/healthz")
        assert server.wait(timeout=10)
        assert server.requests_served == 2
        # The shutdown also cleans up the socket and batcher without an
        # explicit stop(): the serving thread runs _cleanup on exit.
        for _ in range(100):
            if server.service.batcher._stopped:
                break
            time.sleep(0.05)
        assert server.service.batcher._stopped
        server.stop()  # idempotent

    def test_broken_model_returns_500_and_keeps_serving(self, artifact, serve_problem):
        from repro.serve import PipelineArtifact

        class _BrokenModel:
            def predict(self, X):
                raise KeyError("boom")

        X, _ = serve_problem
        broken = PipelineArtifact(artifact.plan, "classification", model=_BrokenModel())
        with InferenceServer(broken, port=0, max_wait_ms=0.5) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server.url + "/predict", {"rows": X[:1].tolist()})
            assert err.value.code == 500
            assert "KeyError" in json.loads(err.value.read())["error"]
            # The connection was answered, not dropped, and the server lives.
            body = _post(server.url + "/transform", {"rows": X[:1].tolist()})
            assert len(body["features"]) == 1


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self, artifact, serve_problem):
        """N threads posting single rows at once must share vectorized
        applies — fewer batches than requests — with per-row results
        identical to direct computation."""
        X, _ = serve_problem
        n_threads = 12
        service = PipelineService(artifact, max_wait_ms=150.0)
        try:
            expected = artifact.predict(X[:n_threads])
            barrier = threading.Barrier(n_threads)
            results: list = [None] * n_threads
            errors: list = []

            def worker(i: int) -> None:
                try:
                    barrier.wait(timeout=10)
                    results[i] = service.predict(X[i : i + 1])["predictions"][0]
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert [r for r in results] == expected.tolist()
            stats = service.batcher.stats()
            assert stats["requests"] == n_threads
            # The barrier + 150ms window guarantees coalescing: strictly
            # fewer vectorized applies than requests, and at least one
            # multi-request batch.
            assert stats["batches"] < n_threads
            assert stats["max_batch_requests"] > 1
        finally:
            service.close()

    def test_batch_row_cap_respected(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(artifact, max_wait_ms=0.0, max_batch_rows=2)
        try:
            out = service.predict(X[:6])
            assert len(out["predictions"]) == 6
        finally:
            service.close()

    def test_in_process_transform(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(artifact)
        try:
            np.testing.assert_array_equal(
                service.transform(X[:4]), artifact.transform(X[:4]), strict=True
            )
        finally:
            service.close()

    def test_shape_validation_before_batching(self, artifact):
        service = PipelineService(artifact)
        try:
            with pytest.raises(ValueError, match="rows must be"):
                service.predict([[1.0, 2.0]])
            with pytest.raises(ValueError, match="finite"):
                service.predict([[np.nan, 1.0, 2.0, 3.0]])
            # Bad requests never reached the batcher.
            assert service.batcher.stats()["requests"] == 0
        finally:
            service.close()

    def test_submit_after_close_raises(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(artifact)
        service.close()
        with pytest.raises(RuntimeError, match="stopped"):
            service.predict(X[:1])
