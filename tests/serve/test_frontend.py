"""Production front-end behaviors: admission control, deadlines, hot swap,
shadow routing — and the MicroBatcher robustness regressions (worker
death, query-string miscount, client disconnect)."""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import types
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.serve import (
    ArtifactRegistry,
    DeadlineExceededError,
    InferenceServer,
    PipelineArtifact,
    PipelineService,
    QueueFullError,
)


class ConstModel:
    """Predicts a constant — prediction value identifies the artifact."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def predict(self, features) -> np.ndarray:
        return np.full(len(features), self.value)


class GateModel:
    """predict() blocks until the gate opens — deterministic slow batches."""

    def __init__(self) -> None:
        self.gate = threading.Event()

    def predict(self, features) -> np.ndarray:
        self.gate.wait(timeout=30.0)
        return np.zeros(len(features))


def _variant(artifact: PipelineArtifact, model) -> PipelineArtifact:
    """Same plan/task as the fixture artifact, different model."""
    return PipelineArtifact(artifact.plan, artifact.task, model=model)


def _post(url: str, payload: dict, headers: dict | None = None) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(req, timeout=15) as resp:
        return json.loads(resp.read())


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=15) as resp:
        return resp.read().decode()


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestWorkerDeathRegression:
    """The pre-rebuild batcher hung every waiter when the worker died."""

    # The deliberately-killed worker thread dies with a traceback — that
    # is the scenario under test, not an accident.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_worker_unblocks_waiter_and_fails_fast(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(artifact, max_wait_ms=0.0)
        batcher = service.batcher

        def boom(batch, art, version):
            raise ZeroDivisionError("batch runner killed")

        batcher._run_batch = boom
        outcome: dict = {}

        def call():
            try:
                outcome["result"] = service.transform(X[:2])
            except Exception as exc:
                outcome["error"] = exc

        waiter = threading.Thread(target=call, daemon=True)
        waiter.start()
        waiter.join(timeout=10.0)
        assert not waiter.is_alive(), "submit hung after the worker died"
        assert isinstance(outcome.get("error"), RuntimeError)
        assert "died" in str(outcome["error"])
        batcher._worker.join(timeout=5.0)
        assert not batcher._worker.is_alive()
        # Subsequent submits fail fast instead of queueing into the void.
        with pytest.raises(RuntimeError, match="died"):
            service.transform(X[:2])
        service.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_raising_metrics_hook_does_not_strand_the_waiter(
        self, artifact, serve_problem
    ):
        # The original bug trigger: a histogram observe() raising inside
        # the worker loop stranded every client on an event never set.
        X, _ = serve_problem
        service = PipelineService(artifact, max_wait_ms=0.0)

        def observe_boom(value):
            raise ZeroDivisionError("observe blew up")

        service.batcher._batch_latency.observe = observe_boom
        outcome: dict = {}

        def call():
            try:
                outcome["result"] = service.transform(X[:2])
            except Exception as exc:
                outcome["error"] = exc

        waiter = threading.Thread(target=call, daemon=True)
        waiter.start()
        waiter.join(timeout=10.0)
        assert not waiter.is_alive(), "waiter stranded by a raising metrics hook"
        # The batch itself succeeded; the answer must still be delivered.
        assert outcome.get("result") is not None
        assert outcome["result"].shape[0] == 2
        service.close()

    def test_close_fails_still_queued_pendings(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        service = PipelineService(
            _variant(artifact, gate_model), max_wait_ms=0.0, max_batch_rows=1
        )
        batcher = service.batcher
        first: dict = {}

        def call_first():
            try:
                first["result"] = service.predict(X[:1])
            except Exception as exc:
                first["error"] = exc

        t_first = threading.Thread(target=call_first, daemon=True)
        t_first.start()
        assert _wait_until(lambda: batcher.n_batches >= 1)  # claimed, gated
        queued = service.submit_nowait("predict", X[:1])

        closer = threading.Thread(target=service.close, daemon=True)
        closer.start()
        time.sleep(0.2)  # close() is now joining the busy worker
        gate_model.gate.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        # The in-flight batch finished; the queued request was failed, not
        # silently processed or left waiting forever.
        t_first.join(timeout=10.0)
        assert "result" in first
        with pytest.raises(RuntimeError, match="stopped"):
            batcher.wait_for(queued)


class TestAdmissionControl:
    def test_bounded_queue_sheds_with_retry_after(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        service = PipelineService(
            _variant(artifact, gate_model),
            max_wait_ms=0.0,
            max_batch_rows=1,
            max_queue=1,
        )
        batcher = service.batcher
        threads = []
        try:
            t = threading.Thread(target=lambda: service.predict(X[:1]), daemon=True)
            t.start()
            threads.append(t)
            assert _wait_until(lambda: batcher.n_batches >= 1)  # worker busy
            queued = service.submit_nowait("predict", X[:1])  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                service.submit_nowait("predict", X[:1])
            assert excinfo.value.retry_after >= 1
            assert int(batcher._shed.value) == 1
            assert service.metrics.get("serve_queue_depth").value == 1
            stats = batcher.stats()
            assert stats["shed"] == 1 and stats["queue_depth"] == 1
        finally:
            gate_model.gate.set()
            for t in threads:
                t.join(timeout=10.0)
            batcher.wait_for(queued)
            service.close()

    def test_http_429_with_retry_after_header(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        server = InferenceServer(
            _variant(artifact, gate_model),
            port=0,
            max_wait_ms=0.0,
            max_batch_rows=1,
            max_queue=1,
        )
        rows = {"rows": X[:1].tolist()}
        results: list = []

        def post_ok():
            results.append(_post(server.url + "/predict", rows))

        with server:
            batcher = server.service.batcher
            t1 = threading.Thread(target=post_ok, daemon=True)
            t1.start()
            assert _wait_until(lambda: batcher.n_batches >= 1)
            t2 = threading.Thread(target=post_ok, daemon=True)
            t2.start()
            assert _wait_until(lambda: len(batcher._queue) >= 1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server.url + "/predict", rows)
            err = excinfo.value
            assert err.code == 429
            assert int(err.headers["Retry-After"]) >= 1
            assert "queue full" in json.loads(err.read())["error"]
            metrics = _get(server.url + "/metrics")
            assert "serve_requests_shed_total 1" in metrics
            assert 'serve_http_responses_total{path="/predict",status="429"} 1' in metrics
            gate_model.gate.set()
            t1.join(timeout=10.0)
            t2.join(timeout=10.0)
        assert len(results) == 2  # the admitted requests were both answered


class TestDeadlines:
    def test_default_deadline_expires_in_process(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        service = PipelineService(
            _variant(artifact, gate_model),
            max_wait_ms=0.0,
            max_batch_rows=1,
            deadline_ms=150.0,
        )
        batcher = service.batcher

        def gated_call():
            # The gated request outlives its own default deadline too.
            with pytest.raises(DeadlineExceededError):
                service.predict(X[:1])

        t = threading.Thread(target=gated_call, daemon=True)
        try:
            t.start()
            assert _wait_until(lambda: batcher.n_batches >= 1)  # worker gated
            t0 = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                service.predict(X[:1])
            assert time.monotonic() - t0 < 5.0
            assert int(batcher._deadline_expired.value) >= 1
        finally:
            gate_model.gate.set()
            t.join(timeout=10.0)
            service.close()

    def test_http_deadline_header_answers_504(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        server = InferenceServer(
            _variant(artifact, gate_model), port=0, max_wait_ms=0.0, max_batch_rows=1
        )
        rows = {"rows": X[:1].tolist()}
        with server:
            batcher = server.service.batcher
            t = threading.Thread(
                target=lambda: _post(server.url + "/predict", rows), daemon=True
            )
            t.start()
            assert _wait_until(lambda: batcher.n_batches >= 1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server.url + "/predict", rows, headers={"X-Deadline-Ms": "150"})
            assert excinfo.value.code == 504
            assert "deadline" in json.loads(excinfo.value.read())["error"]
            metrics = _get(server.url + "/metrics")
            assert "serve_deadline_expired_total" in metrics
            gate_model.gate.set()
            t.join(timeout=10.0)

    def test_invalid_deadline_header_is_400(self, artifact, serve_problem):
        X, _ = serve_problem
        with InferenceServer(artifact, port=0, max_wait_ms=0.0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server.url + "/predict",
                    {"rows": X[:1].tolist()},
                    headers={"X-Deadline-Ms": "soon"},
                )
            assert excinfo.value.code == 400


class TestHotSwap:
    def test_swap_under_concurrent_load_never_mixes_versions(
        self, artifact, serve_problem
    ):
        X, _ = serve_problem
        art0 = _variant(artifact, ConstModel(0.0))
        art1 = _variant(artifact, ConstModel(1.0))
        service = PipelineService(art0, max_wait_ms=0.5, version="v0001")
        expected = {0.0: "v0001", 1.0: "v0002"}
        stop = threading.Event()
        errors: list = []
        seen: set = set()

        def hammer():
            while not stop.is_set():
                try:
                    pending = service.submit_nowait("predict", X[:3])
                    result = service.batcher.wait_for(pending)
                except Exception as exc:  # any error fails the test
                    errors.append(exc)
                    return
                values = set(np.asarray(result["predictions"]).tolist())
                if len(values) != 1:
                    errors.append(AssertionError(f"mixed predictions: {values}"))
                    return
                value = values.pop()
                if expected[value] != pending.served_by:
                    errors.append(
                        AssertionError(
                            f"prediction {value} labeled {pending.served_by}"
                        )
                    )
                    return
                seen.add(pending.served_by)

        threads = [threading.Thread(target=hammer, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        assert service.reload(art1, version="v0002") == "v0001"
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        service.close()
        assert not errors, errors[0]
        assert seen == {"v0001", "v0002"}  # both versions actually served
        reloads = service.metrics.get("serve_reloads")
        assert reloads is not None and reloads.value == 1

    def test_reload_rejects_incompatible_input_width(self, artifact):
        service = PipelineService(artifact, max_wait_ms=0.0)
        try:
            narrower = types.SimpleNamespace(
                plan=types.SimpleNamespace(n_input_columns=999)
            )
            with pytest.raises(ValueError, match="cannot hot-swap"):
                service.reload(narrower)
        finally:
            service.close()

    def test_admin_reload_over_http(self, artifact, serve_problem, tmp_path):
        X, _ = serve_problem
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.publish(_variant(artifact, ConstModel(0.0)), "model", tag="prod")
        server = api.serve_from_registry(
            registry, "model", tag="prod", reload=True, port=0, max_wait_ms=0.0
        )
        rows = {"rows": X[:2].tolist()}
        with server:
            out = _post(server.url + "/predict", rows)
            assert out["artifact_version"] == "v0001"
            assert out["predictions"] == [0.0, 0.0]
            # Nothing promoted yet: reload is a counted no-op.
            out = _post(server.url + "/admin/reload", {})
            assert out == {"swapped": False, "version": "v0001", "previous": "v0001"}
            registry.publish(_variant(artifact, ConstModel(1.0)), "model", tag="prod")
            out = _post(server.url + "/admin/reload", {})
            assert out == {"swapped": True, "version": "v0002", "previous": "v0001"}
            out = _post(server.url + "/predict", rows)
            assert out["artifact_version"] == "v0002"
            assert out["predictions"] == [1.0, 1.0]
            health = json.loads(_get(server.url + "/healthz"))
            assert health["version"] == "v0002"

    def test_admin_reload_without_source_is_400(self, artifact):
        with InferenceServer(artifact, port=0, max_wait_ms=0.0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server.url + "/admin/reload", {})
            assert excinfo.value.code == 400
            assert "not configured" in json.loads(excinfo.value.read())["error"]


class TestShadowRouting:
    def test_divergent_challenger_counts_per_request(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(
            _variant(artifact, ConstModel(0.0)),
            max_wait_ms=0.0,
            shadow_artifact=_variant(artifact, ConstModel(1.0)),
            shadow_version="challenger",
        )
        try:
            for i in range(3):
                service.predict(X[i : i + 2])
            service.transform(X[:2])  # identical plans: transform agrees
            assert service.shadow.flush(timeout=10.0)
            stats = service.shadow.stats()
            assert stats["requests"] == 4
            assert stats["divergences"] == 3  # every predict, no transform
            metric = service.metrics.get(
                "serve_shadow_divergence", {"kind": "predict"}
            )
            assert metric is not None and metric.value == 3
            assert "shadow" in service.healthz()
        finally:
            service.close()

    def test_identical_challenger_never_diverges(self, artifact, serve_problem):
        X, _ = serve_problem
        service = PipelineService(
            artifact, max_wait_ms=0.0, shadow_artifact=artifact
        )
        try:
            service.predict(X[:4])
            service.transform(X[:4])
            assert service.shadow.flush(timeout=10.0)
            stats = service.shadow.stats()
            assert stats["requests"] == 2 and stats["divergences"] == 0
        finally:
            service.close()

    def test_shadow_tag_over_http(self, artifact, serve_problem, tmp_path):
        X, _ = serve_problem
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.publish(_variant(artifact, ConstModel(0.0)), "model", tag="prod")
        registry.publish(_variant(artifact, ConstModel(1.0)), "model", tag="next")
        server = api.serve_from_registry(
            registry, "model", tag="prod", shadow_tag="next", port=0, max_wait_ms=0.0
        )
        with server:
            out = _post(server.url + "/predict", {"rows": X[:2].tolist()})
            assert out["predictions"] == [0.0, 0.0]  # stable tag answers
            assert server.service.shadow.flush(timeout=10.0)
            metrics = _get(server.url + "/metrics")
            assert 'serve_shadow_divergence_total{kind="predict"} 1' in metrics
            health = json.loads(_get(server.url + "/healthz"))
            assert health["shadow"]["version"] == "v0002"


class TestQueryStringRegression:
    """The pre-rebuild handler matched the raw target against known paths,
    so `/healthz?probe=1` 404'd and was miscounted as "other"."""

    def test_query_string_routes_and_counts_correctly(self, artifact):
        with InferenceServer(artifact, port=0, max_wait_ms=0.5) as server:
            health = json.loads(_get(server.url + "/healthz?probe=1"))
            assert health["status"] == "ok"
            _get(server.url + "/metrics?x=1")
            metrics = _get(server.url + "/metrics")
            assert 'serve_http_responses_total{path="/healthz",status="200"} 1' in metrics
            assert 'serve_http_responses_total{path="/metrics",status="200"}' in metrics
            assert 'path="other"' not in metrics


class TestClientDisconnectRegression:
    """A client hanging up mid-response used to raise an unhandled
    BrokenPipe/ConnectionReset in the handler; now it is counted."""

    def test_disconnect_counted_and_server_survives(self, artifact, serve_problem):
        X, _ = serve_problem
        gate_model = GateModel()
        server = InferenceServer(
            _variant(artifact, gate_model), port=0, max_wait_ms=0.0
        )
        with server:
            batcher = server.service.batcher
            payload = json.dumps({"rows": X[:1].tolist()}).encode()
            conn = socket.create_connection(server.address, timeout=10)
            conn.sendall(
                b"POST /predict HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            assert _wait_until(lambda: batcher.n_batches >= 1)  # request claimed
            # RST-close while the server is still computing the response.
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            conn.close()
            gate_model.gate.set()

            def disconnect_counted():
                metrics = _get(server.url + "/metrics")
                return "serve_client_disconnects_total 1" in metrics

            assert _wait_until(disconnect_counted, timeout=10.0)
            metrics = _get(server.url + "/metrics")
            assert (
                'serve_http_responses_total{path="/predict",status="disconnect"} 1'
                in metrics
            )
            # The server keeps serving normal traffic afterwards.
            out = _post(server.url + "/predict", {"rows": X[:1].tolist()})
            assert out["predictions"] == [0.0]
