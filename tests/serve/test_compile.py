"""Tests for the plan compiler: byte-identity, CSE, chunking, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operations import BINARY_OPERATIONS, UNARY_OPERATIONS
from repro.core.sequence import FeatureNode, FeatureSpace, TransformationPlan
from repro.serve.compile import compile_plan


@pytest.fixture
def every_op_plan(rng):
    """A plan whose DAG exercises every registered operation, including
    nested derivations, with some features pruned away."""
    X = rng.normal(size=(80, 4))
    fs = FeatureSpace(X)
    for op in UNARY_OPERATIONS:
        fs.apply_unary(op.name, [0, 1])
    for op in BINARY_OPERATIONS:
        fs.apply_binary(op.name, [0, 1], [2, 3])
    # Nest: operate on generated features, then prune to a subset so the
    # plan carries dead-but-reachable ancestors.
    generated = [f for f in fs.live_ids if f >= 4]
    fs.apply_binary("add", generated[:2], generated[2:4])
    fs.prune(fs.live_ids[::2])
    return fs.snapshot(), X


def _plan_with_duplicate_subtrees(width: int = 8) -> TransformationPlan:
    """Structurally identical derivations under distinct fids — the case
    interpreter memoization (per fid) cannot deduplicate but CSE can."""
    nodes = {0: FeatureNode(0, None, (), 0), 1: FeatureNode(1, None, (), 1)}
    fid, live = 2, []
    for _ in range(width):
        nodes[fid] = FeatureNode(fid, "add", (0, 1))
        base = fid
        fid += 1
        nodes[fid] = FeatureNode(fid, "log", (base,))
        live.append(fid)
        fid += 1
    return TransformationPlan(
        nodes=nodes, live_ids=live, n_input_columns=3, feature_names=["a", "b", "c"]
    )


class TestByteIdentity:
    def test_every_registered_op(self, every_op_plan):
        plan, X = every_op_plan
        compiled = compile_plan(plan)
        expected = plan.apply(X)
        np.testing.assert_array_equal(compiled.apply(X), expected, strict=True)

    def test_on_unseen_data(self, every_op_plan, rng):
        plan, _ = every_op_plan
        X_new = rng.normal(size=(33, 4)) * 10
        np.testing.assert_array_equal(
            compile_plan(plan).apply(X_new), plan.apply(X_new), strict=True
        )

    @pytest.mark.parametrize("chunk_size", [1, 7, 80, 200])
    def test_chunked_execution(self, every_op_plan, chunk_size):
        plan, X = every_op_plan
        compiled = compile_plan(plan)
        np.testing.assert_array_equal(
            compiled.apply(X, chunk_size=chunk_size), plan.apply(X), strict=True
        )

    def test_chunked_with_nonfinite_inputs(self, every_op_plan):
        """The final sanitization uses global column medians; chunking must
        not change them (the interpreter sanitizes the full matrix too)."""
        plan, X = every_op_plan
        X = X.copy()
        X[::9, 0] = np.inf
        X[3::11, 2] = np.nan
        compiled = compile_plan(plan)
        np.testing.assert_array_equal(
            compiled.apply(X, chunk_size=13), plan.apply(X), strict=True
        )

    def test_duplicate_subtrees(self, rng):
        plan = _plan_with_duplicate_subtrees()
        X = rng.normal(size=(50, 3))
        np.testing.assert_array_equal(
            compile_plan(plan).apply(X), plan.apply(X), strict=True
        )


class TestCompilation:
    def test_cse_merges_duplicate_subtrees(self):
        plan = _plan_with_duplicate_subtrees(width=8)
        compiled = compile_plan(plan)
        # 2 loads + 1 add + 1 log despite 8 structurally-equal chains.
        assert len(compiled.instructions) == 4
        assert compiled.n_nodes == 2 + 2 * 8
        assert compiled.n_merged == compiled.n_nodes - 4
        assert compiled.n_features == 8

    def test_no_spurious_merging(self, rng):
        """Distinct computations must stay distinct."""
        X = rng.normal(size=(40, 3))
        fs = FeatureSpace(X)
        fs.apply_unary("square", [0, 1])
        compiled = compile_plan(fs.snapshot())
        assert compiled.n_merged == 0
        np.testing.assert_array_equal(compiled.apply(X), fs.snapshot().apply(X), strict=True)

    def test_deep_plan_beyond_recursion_limit(self, rng):
        """Compilation and execution are iterative; a chain deeper than
        Python's recursion limit still runs."""
        depth = 5000
        nodes = {0: FeatureNode(0, None, (), 0)}
        for i in range(1, depth):
            nodes[i] = FeatureNode(i, "tanh", (i - 1,))
        plan = TransformationPlan(
            nodes=nodes, live_ids=[depth - 1], n_input_columns=2, feature_names=["a", "b"]
        )
        out = compile_plan(plan).apply(rng.normal(size=(10, 2)))
        assert out.shape == (10, 1)
        assert np.all(np.isfinite(out))

    def test_duplicate_live_ids_supported(self, rng):
        X = rng.normal(size=(20, 2))
        nodes = {0: FeatureNode(0, None, (), 0), 1: FeatureNode(1, "square", (0,))}
        plan = TransformationPlan(
            nodes=nodes, live_ids=[1, 1, 0], n_input_columns=2, feature_names=["a", "b"]
        )
        np.testing.assert_array_equal(
            compile_plan(plan).apply(X), plan.apply(X), strict=True
        )

    def test_invalid_plan_rejected(self):
        plan = TransformationPlan(
            nodes={0: FeatureNode(0, "add", (7, 8))},
            live_ids=[0],
            n_input_columns=2,
            feature_names=["a", "b"],
        )
        with pytest.raises(ValueError, match="dangling"):
            compile_plan(plan)


class TestApplyErrors:
    def test_wrong_column_count(self, every_op_plan, rng):
        plan, _ = every_op_plan
        with pytest.raises(ValueError, match="columns"):
            compile_plan(plan).apply(rng.normal(size=(10, 3)))

    def test_bad_chunk_size(self, every_op_plan, rng):
        plan, X = every_op_plan
        with pytest.raises(ValueError, match="chunk_size"):
            compile_plan(plan).apply(X, chunk_size=0)
