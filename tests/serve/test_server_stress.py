"""MicroBatcher under contention: exactness is independent of coalescing.

The batcher's contract — asserted by PR 3 but never exercised under real
concurrency — is that a response depends only on the request's own rows,
never on which other requests it was coalesced with. That holds because
every pipeline op is elementwise (row-independent) and non-finite inputs
are rejected *before* batching (batch-median imputation would otherwise
leak batch composition into responses). This suite hammers the in-process
``PipelineService`` from many threads with barrier-synchronized rounds (so
batches actually form) and checks byte-identity against single-request
answers, with mixed transform/predict kinds, shuffled batch compositions
and interleaved invalid requests.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.server import PipelineService

N_THREADS = 12
ROUNDS = 4


@pytest.fixture()
def service(artifact):
    service = PipelineService(artifact, max_wait_ms=50.0)
    yield service
    service.close()


def _requests(artifact, seed: int) -> list[tuple[str, np.ndarray]]:
    """One request per thread: mixed kinds, varied row counts."""
    rng = np.random.default_rng(seed)
    d = artifact.plan.n_input_columns
    out = []
    for i in range(N_THREADS):
        rows = rng.normal(size=(1 + i % 3, d)) * rng.choice([1e-2, 1.0, 1e3])
        kind = "predict" if i % 3 == 2 else "transform"
        out.append((kind, rows))
    return out


def _reference(artifact, kind: str, rows: np.ndarray) -> dict:
    """Single-request ground truth, computed without the batcher."""
    features = artifact.transform(rows)
    if kind == "transform":
        return {"features": features}
    out = {"predictions": artifact.model.predict(features)}
    if hasattr(artifact.model, "predict_proba"):
        out["proba"] = artifact.model.predict_proba(features)
    return out


def _hammer(service, requests) -> list[dict | Exception]:
    """Fire all requests through a barrier so they land in one window."""
    barrier = threading.Barrier(len(requests))
    results: list[dict | Exception | None] = [None] * len(requests)

    def worker(i: int, kind: str, rows: np.ndarray) -> None:
        barrier.wait()
        try:
            if kind == "transform":
                results[i] = {"features": service.transform(rows)}
            else:
                results[i] = service.predict(rows)
        except Exception as exc:  # collected and asserted by the caller
            results[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i, kind, rows))
        for i, (kind, rows) in enumerate(requests)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert all(not t.is_alive() for t in threads)
    return results


def _assert_byte_identical(actual: dict, expected: dict) -> None:
    assert set(actual) == set(expected)
    for key, value in expected.items():
        assert actual[key].tobytes() == value.tobytes(), key


def test_concurrent_responses_byte_identical_to_single_requests(artifact, service):
    for round_no in range(ROUNDS):
        # A different permutation each round changes which requests share a
        # batch — responses must not notice.
        requests = _requests(artifact, seed=round_no)
        results = _hammer(service, requests)
        for (kind, rows), actual in zip(requests, results):
            assert not isinstance(actual, Exception), actual
            _assert_byte_identical(actual, _reference(artifact, kind, rows))
    stats = service.batcher.stats()
    assert stats["requests"] == N_THREADS * ROUNDS
    # The barrier + 50ms window guarantees real coalescing happened, so the
    # identity checks above genuinely covered multi-request batches.
    assert stats["max_batch_requests"] >= 2
    assert stats["batches"] < stats["requests"]


def test_batch_composition_does_not_change_answers(artifact, service):
    """The same request coalesced with different partners answers the same."""
    rng = np.random.default_rng(99)
    d = artifact.plan.n_input_columns
    probe = rng.normal(size=(2, d))
    expected = _reference(artifact, "transform", probe)

    outputs = []
    for round_no in range(ROUNDS):
        partners = _requests(artifact, seed=1000 + round_no)
        requests = [("transform", probe), *partners]
        results = _hammer(service, requests)
        assert not isinstance(results[0], Exception), results[0]
        outputs.append(results[0])
    for actual in outputs:
        _assert_byte_identical(actual, expected)


def test_invalid_rows_rejected_without_poisoning_the_batch(artifact, service):
    """Non-finite rows raise for their caller only — the guard that keeps
    batch-median imputation (hence batch composition) out of responses."""
    rng = np.random.default_rng(7)
    d = artifact.plan.n_input_columns
    requests = []
    for i in range(N_THREADS):
        rows = rng.normal(size=(2, d))
        if i % 4 == 0:
            rows = rows.copy()
            rows[0, 0] = np.inf if i % 8 == 0 else np.nan
        requests.append(("transform", rows))
    results = _hammer(service, requests)
    for i, ((kind, rows), actual) in enumerate(zip(requests, results)):
        if i % 4 == 0:
            assert isinstance(actual, ValueError)
            assert "finite" in str(actual)
        else:
            assert not isinstance(actual, Exception), actual
            _assert_byte_identical(actual, _reference(artifact, kind, rows))
