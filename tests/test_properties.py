"""Property-based tests (hypothesis): the invariants everything leans on.

Three families, each guarding a contract the rest of the system assumes
silently:

- every registered operation is *total* and *guarded* — any float input
  (NaN/inf included) yields a finite, clipped, shape-preserving, bitwise-
  deterministic output, because the RL agents compose ops blindly and the
  downstream oracle requires finite matrices;
- the serving compiler is *exact* — on randomly-grown transformation
  plans, compiled execution (plain and chunked) is byte-identical to the
  interpreter, and plan JSON round-trips losslessly;
- the oracle cache key is a *content* signature — equal arrays collide,
  any element/dtype/shape/fingerprint perturbation separates.

``derandomize=True`` keeps tier-1 CI reproducible; the generators still
cover the space across examples. hypothesis is the repo's declared dev
dependency (``pip install hypothesis``) — the module skips without it.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis", reason="property tests need the hypothesis dev dependency")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.core.operations import (  # noqa: E402
    BINARY_OPERATIONS,
    OPERATIONS,
    UNARY_OPERATIONS,
)
from repro.core.sequence import FeatureSpace, TransformationPlan  # noqa: E402
from repro.ml.cache import EvaluationCache  # noqa: E402
from repro.serve.compile import compile_plan  # noqa: E402

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

_CLIP = 1e12  # the operations module's guard bound

any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
columns = hnp.arrays(np.float64, st.integers(1, 40), elements=any_floats)


@SETTINGS
@given(op=st.sampled_from(UNARY_OPERATIONS), values=columns)
def test_unary_ops_total_finite_and_deterministic(op, values):
    out = op(values)
    assert out.shape == values.shape
    assert np.all(np.isfinite(out))
    assert np.all(np.abs(out) <= _CLIP)
    assert out.tobytes() == op(values.copy()).tobytes()


@SETTINGS
@given(
    op=st.sampled_from(BINARY_OPERATIONS),
    pair=st.integers(1, 40).flatmap(
        lambda n: st.tuples(
            hnp.arrays(np.float64, n, elements=any_floats),
            hnp.arrays(np.float64, n, elements=any_floats),
        )
    ),
)
def test_binary_ops_total_finite_and_deterministic(op, pair):
    a, b = pair
    out = op(a, b)
    assert out.shape == a.shape
    assert np.all(np.isfinite(out))
    assert np.all(np.abs(out) <= _CLIP)
    assert out.tobytes() == op(a.copy(), b.copy()).tobytes()


@SETTINGS
@given(op=st.sampled_from(OPERATIONS))
def test_ops_reject_wrong_arity(op):
    args = [np.zeros(3)] * (op.arity + 1)
    with pytest.raises(ValueError, match="operand"):
        op(*args)


def _grow_random_plan(data) -> tuple[TransformationPlan, np.ndarray]:
    """Draw a transformation plan the way the search grows one: by applying
    drawn ops to the live feature set (including onto derived features)."""
    n = data.draw(st.integers(8, 30), label="rows")
    d = data.draw(st.integers(2, 4), label="cols")
    seed = data.draw(st.integers(0, 2**32 - 1), label="seed")
    scale = data.draw(st.sampled_from([1e-3, 1.0, 1e4]), label="scale")
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) * scale
    space = FeatureSpace(X)
    for _ in range(data.draw(st.integers(1, 5), label="steps")):
        op = data.draw(st.sampled_from(OPERATIONS))
        live = space.live_ids
        heads = data.draw(
            st.lists(st.sampled_from(live), min_size=1, max_size=3, unique=True),
            label="heads",
        )
        if op.arity == 1:
            space.apply_unary(op.name, heads)
        else:
            tails = data.draw(
                st.lists(st.sampled_from(live), min_size=1, max_size=3, unique=True),
                label="tails",
            )
            space.apply_binary(op.name, heads, tails, max_new=4, rng=rng)
    return space.snapshot(), X


@SETTINGS
@given(data=st.data())
def test_compiled_plan_byte_identical_to_interpreter(data):
    plan, X = _grow_random_plan(data)
    reference = plan.apply(X)
    compiled = compile_plan(plan)
    assert compiled.apply(X).tobytes() == reference.tobytes()
    chunk = data.draw(st.integers(1, X.shape[0]), label="chunk")
    assert compiled.apply(X, chunk_size=chunk).tobytes() == reference.tobytes()


@SETTINGS
@given(data=st.data())
def test_plan_json_roundtrip_is_lossless(data):
    plan, X = _grow_random_plan(data)
    restored = TransformationPlan.from_json(plan.to_json())
    assert restored.to_json() == plan.to_json()
    assert restored.apply(X).tobytes() == plan.apply(X).tobytes()


# -- arena FeatureSpace: byte-identical to the dict reference ------------------


@SETTINGS
@given(data=st.data())
def test_arena_matrix_byte_identical_to_column_stack_reference(data):
    """Drive an arena-backed and a dict-backed space through the same
    random grow/prune program: every matrix() gather must be byte-identical
    to the naive per-column ``np.column_stack`` reference, across arena
    doublings and non-prefix live sets."""
    n = data.draw(st.integers(5, 40), label="rows")
    d = data.draw(st.integers(1, 4), label="cols")
    seed = data.draw(st.integers(0, 2**32 - 1), label="seed")
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) * data.draw(
        st.sampled_from([1e-3, 1.0, 1e4]), label="scale"
    )
    arena = FeatureSpace(X, backend="arena")
    reference = FeatureSpace(X, backend="dict")
    for _ in range(data.draw(st.integers(1, 6), label="steps")):
        op = data.draw(st.sampled_from(OPERATIONS))
        live = reference.live_ids
        heads = data.draw(
            st.lists(st.sampled_from(live), min_size=1, max_size=3, unique=True),
            label="heads",
        )
        if op.arity == 1:
            new_a = arena.apply_unary(op.name, heads)
            new_r = reference.apply_unary(op.name, heads)
        else:
            tails = data.draw(
                st.lists(st.sampled_from(live), min_size=1, max_size=3, unique=True),
                label="tails",
            )
            # Identical pair sampling on both sides: same seeded stream.
            new_a = arena.apply_binary(
                op.name, heads, tails, max_new=4, rng=np.random.default_rng(seed)
            )
            new_r = reference.apply_binary(
                op.name, heads, tails, max_new=4, rng=np.random.default_rng(seed)
            )
        assert new_a == new_r
        if data.draw(st.booleans(), label="prune"):
            keep = data.draw(
                st.lists(
                    st.sampled_from(reference.live_ids),
                    min_size=1,
                    max_size=reference.n_features,
                    unique=True,
                ),
                label="keep",
            )
            arena.prune(keep)
            reference.prune(keep)
        assert arena.live_ids == reference.live_ids
        expected = np.column_stack([reference.values(f) for f in reference.live_ids])
        produced = arena.matrix()
        assert produced.flags.c_contiguous
        assert produced.tobytes() == expected.tobytes()
        assert arena.matrix_view().tobytes("C") == expected.tobytes()
    assert arena.snapshot().to_json() == reference.snapshot().to_json()


# -- cache signature: equal content <=> equal keys -----------------------------

matrices = st.integers(1, 12).flatmap(
    lambda n: st.integers(1, 6).flatmap(
        lambda d: hnp.arrays(
            np.float64,
            (n, d),
            elements=st.floats(
                allow_nan=False, allow_infinity=False, width=64,
                min_value=-1e9, max_value=1e9,
            ),
        )
    )
)


@SETTINGS
@given(X=matrices, fingerprint=st.binary(max_size=8))
def test_signature_equal_arrays_equal_keys(X, fingerprint):
    cache = EvaluationCache()
    y = np.arange(X.shape[0], dtype=float)
    key = cache.signature(X, y, fingerprint)
    assert cache.signature(np.array(X, copy=True), y.copy(), fingerprint) == key
    # A non-contiguous view with the same logical content still matches.
    doubled = np.ascontiguousarray(np.repeat(X, 2, axis=1))[:, ::2]
    assert cache.signature(doubled, y, fingerprint) == key
    # So do F-order copies (e.g. arena matrix_view slices): keys are
    # derived from row-major bytes whatever the input layout, which is
    # what lets the C-contiguous zero-copy fast path share the key space.
    assert cache.signature(np.asfortranarray(X), y, fingerprint) == key


@SETTINGS
@given(X=matrices, data=st.data())
def test_signature_separates_any_perturbation(X, data):
    cache = EvaluationCache()
    y = np.arange(X.shape[0], dtype=float)
    key = cache.signature(X, y)

    # element perturbation
    i = data.draw(st.integers(0, X.shape[0] - 1), label="row")
    j = data.draw(st.integers(0, X.shape[1] - 1), label="col")
    bumped = X.copy()
    bumped[i, j] = bumped[i, j] + 1.0 if np.isfinite(bumped[i, j]) else 0.0
    if bumped[i, j] != X[i, j]:  # degenerate draws (1e9 + 1 == 1e9) prove nothing
        assert cache.signature(bumped, y) != key

    # dtype perturbation: same values, narrower dtype
    as32 = X.astype(np.float32)
    assert cache.signature(as32, y) != key

    # shape perturbation: same bytes, different shape
    flat = X.reshape(1, -1)
    if flat.shape != X.shape:
        assert cache.signature(flat, y) != key

    # target perturbation
    assert cache.signature(X, y + 1.0) != key

    # evaluator fingerprint perturbation
    assert cache.signature(X, y, b"other-evaluator") != key
