"""Masked exact batch encode: bit-identical to the per-sequence loop.

The inference batch path (``encode_batch`` / ``infer_batch`` /
``score_batch``) promises *bitwise* equality with encoding each sequence
alone — not np.allclose. That promise is what lets the async oracle's
deferred φ estimates and the batched trigger scoring share goldens with
the per-sequence arms. These property tests drive random ragged batches
(plus the length-1 and all-equal-length edge cases that exercise the
mask-freeze and the no-padding fast paths) through both paths and compare
raw bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis", reason="property tests need the hypothesis dev dependency")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.novelty import NoveltyEstimator  # noqa: E402
from repro.core.predictor import SequenceRegressor  # noqa: E402
from repro.nn.recurrent import LSTMEncoder, RNNEncoder  # noqa: E402

SETTINGS = settings(max_examples=40, deadline=None, derandomize=True)

VOCAB = 12

# One encoder of each family, built once: bit-identity is a property of
# the arithmetic, not of the particular weights, and reusing the modules
# keeps the 40-example property runs fast.
_ENCODERS = {
    "lstm": LSTMEncoder(VOCAB, embed_dim=8, hidden_dim=8, num_layers=2, seed=0),
    "rnn": RNNEncoder(VOCAB, embed_dim=8, hidden_dim=8, num_layers=2, seed=0),
}
_REGRESSORS = {
    kind: SequenceRegressor(
        VOCAB, seq_model=kind, embed_dim=8, hidden_dim=8, num_layers=2,
        head_dims=(16, 1), seed=1,
    )
    for kind in ("lstm", "rnn")
}
_NOVELTY = NoveltyEstimator(
    VOCAB, seq_model="lstm", embed_dim=8, hidden_dim=8, num_layers=2, seed=2
)

_sequence = st.lists(
    st.integers(0, VOCAB - 1), min_size=1, max_size=8
).map(lambda s: np.array(s, dtype=np.int64))

# Random ragged batches — the general case.
ragged_batches = st.lists(_sequence, min_size=1, max_size=6)


@st.composite
def equal_length_batches(draw):
    """Every sequence the same length: the no-padding path (mask all ones,
    np.where never freezes). Length 1 is drawn too — the all-length-1
    edge case where the unroll runs a single timestep."""
    length = draw(st.integers(1, 6))
    n = draw(st.integers(1, 5))
    return [
        np.array(
            draw(st.lists(st.integers(0, VOCAB - 1), min_size=length, max_size=length)),
            dtype=np.int64,
        )
        for _ in range(n)
    ]


def _per_sequence_reference(encoder, batch):
    return np.vstack([encoder(seq).data for seq in batch])


@pytest.mark.parametrize("kind", ["lstm", "rnn"])
class TestEncodeBatchBitIdentity:
    @SETTINGS
    @given(batch=ragged_batches)
    def test_ragged_batch_matches_per_sequence_loop(self, kind, batch):
        encoder = _ENCODERS[kind]
        batched = encoder.encode_batch(batch)
        reference = _per_sequence_reference(encoder, batch)
        assert batched.shape == reference.shape
        assert batched.tobytes() == reference.tobytes()

    @SETTINGS
    @given(batch=equal_length_batches())
    def test_equal_length_batch_matches_per_sequence_loop(self, kind, batch):
        encoder = _ENCODERS[kind]
        batched = encoder.encode_batch(batch)
        reference = _per_sequence_reference(encoder, batch)
        assert batched.tobytes() == reference.tobytes()

    def test_singleton_and_all_length_one(self, kind):
        encoder = _ENCODERS[kind]
        one = [np.array([3], dtype=np.int64)]
        assert encoder.encode_batch(one).tobytes() == _per_sequence_reference(encoder, one).tobytes()
        ones = [np.array([t], dtype=np.int64) for t in (0, 5, VOCAB - 1)]
        assert (
            encoder.encode_batch(ones).tobytes()
            == _per_sequence_reference(encoder, ones).tobytes()
        )

    @SETTINGS
    @given(batch=ragged_batches)
    def test_infer_batch_matches_per_sequence_forward(self, kind, batch):
        model = _REGRESSORS[kind]
        batched = model.infer_batch(batch)
        reference = np.array(
            [float(model(seq).data.ravel()[0]) for seq in batch]
        )
        assert batched.tobytes() == reference.tobytes()


@SETTINGS
@given(batch=ragged_batches)
def test_novelty_score_batch_matches_per_sequence_score(batch):
    batched = _NOVELTY.score_batch(batch)
    reference = np.array([_NOVELTY.score(seq) for seq in batch])
    assert batched.tobytes() == reference.tobytes()
