"""Tests for Module containers, layers, encoders, optimizers and initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import TransformerEncoder
from repro.nn.init import normal_, orthogonal_, xavier_uniform_, zeros_
from repro.nn.layers import Embedding, LayerNorm, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.recurrent import LSTMEncoder, RNNEncoder, pad_token_batch
from repro.nn.tensor import Tensor


class TestModule:
    def test_named_parameters_recursive(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 1))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert all(n.startswith("layers.") for n in names)

    def test_parameters_in_list_attributes(self):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.items = [Parameter(np.zeros(2)), Linear(2, 2)]

        assert len(list(WithList().parameters())) == 3

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2)
        b = Linear(3, 2)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_shape_mismatch_raises(self):
        a, b = Linear(3, 2), Linear(2, 2)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_n_parameters_and_memory(self):
        layer = Linear(10, 5)
        assert layer.n_parameters() == 55
        assert layer.memory_bytes() == 55 * 8

    def test_train_eval_flags(self):
        model = Sequential(Linear(2, 2))
        model.eval()
        assert not model.training
        model.train()
        assert model.training


class TestLayers:
    def test_linear_shapes(self, rng):
        out = Linear(4, 7)(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 7)

    def test_linear_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_embedding_lookup_and_grad(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(0))
        out = emb(np.array([[0, 1], [1, 1]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # token 1 appears three times, token 0 once, others never
        assert np.allclose(emb.weight.grad[1], 3.0)
        assert np.allclose(emb.weight.grad[0], 1.0)
        assert np.allclose(emb.weight.grad[2:], 0.0)

    def test_embedding_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Embedding(3, 2)(np.array([5]))

    def test_layernorm_normalizes(self, rng):
        out = LayerNorm(8)(Tensor(rng.normal(3.0, 5.0, size=(4, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_activations(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert (ReLU()(x).data == [0.0, 1.0]).all()
        assert np.allclose(Tanh()(x).data, np.tanh([-1, 1]))
        assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp([1.0, -1.0])))


class TestInitializers:
    def test_orthogonal_rows_orthonormal(self):
        t = Tensor(np.empty((6, 6)))
        orthogonal_(t, gain=1.0, rng=np.random.default_rng(0))
        assert np.allclose(t.data @ t.data.T, np.eye(6), atol=1e-9)

    def test_orthogonal_gain_scales(self):
        t = Tensor(np.empty((4, 4)))
        orthogonal_(t, gain=16.0, rng=np.random.default_rng(0))
        assert np.allclose(t.data @ t.data.T, 256 * np.eye(4), atol=1e-6)

    def test_orthogonal_rectangular(self):
        t = Tensor(np.empty((3, 8)))
        orthogonal_(t, rng=np.random.default_rng(0))
        assert np.allclose(t.data @ t.data.T, np.eye(3), atol=1e-9)

    def test_orthogonal_1d_raises(self):
        with pytest.raises(ValueError):
            orthogonal_(Tensor(np.empty(4)))

    def test_xavier_bound(self):
        t = Tensor(np.empty((100, 100)))
        xavier_uniform_(t, rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(t.data).max() <= bound

    def test_normal_and_zeros(self):
        t = Tensor(np.empty((10, 10)))
        normal_(t, std=0.5, rng=np.random.default_rng(0))
        assert 0.2 < t.data.std() < 0.8
        zeros_(t)
        assert (t.data == 0).all()


class TestOptimizers:
    def _quadratic_descent(self, optimizer_factory, steps=200) -> float:
        w = Parameter(np.array([5.0, -3.0]))
        opt = optimizer_factory([w])
        for _ in range(steps):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        return float(np.abs(w.data).max())

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-6

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-4

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda p: Adam(p, lr=0.2)) < 1e-3

    def test_adam_grad_clipping(self):
        w = Parameter(np.array([1.0]))
        opt = Adam([w], lr=0.1, max_grad_norm=0.001)
        opt.zero_grad()
        (w * 1e9).sum().backward()
        before = w.data.copy()
        opt.step()
        assert abs(w.data[0] - before[0]) < 1.0

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_weight_decay_shrinks(self):
        w = Parameter(np.array([10.0]))
        opt = Adam([w], lr=1e-8, weight_decay=0.5)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data[0] < 10.0


class TestLosses:
    def test_mse_zero_for_equal(self):
        assert mse_loss(Tensor(np.ones(4)), np.ones(4)).item() == 0.0

    def test_mse_value(self):
        assert mse_loss(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0])).item() == 5.0

    def test_huber_quadratic_inside(self):
        loss = huber_loss(Tensor(np.array([0.5])), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_outside(self):
        loss = huber_loss(Tensor(np.array([10.0])), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(9.5)


class TestRecurrentEncoders:
    def test_pad_token_batch(self):
        tokens, mask = pad_token_batch([np.array([1, 2, 3]), np.array([4])])
        assert tokens.shape == (2, 3)
        assert mask.tolist() == [[1, 1, 1], [1, 0, 0]]
        assert tokens[1, 1] == 0

    def test_pad_empty_raises(self):
        with pytest.raises(ValueError):
            pad_token_batch([])
        with pytest.raises(ValueError):
            pad_token_batch([np.array([], dtype=int)])

    def test_lstm_output_shape(self):
        enc = LSTMEncoder(vocab_size=10, embed_dim=8, hidden_dim=6, num_layers=2, seed=0)
        out = enc(np.array([[1, 2, 3], [3, 2, 1]]))
        assert out.shape == (2, 6)

    def test_lstm_mask_freezes_state(self):
        """Padding after the last real token must not change the encoding."""
        enc = LSTMEncoder(vocab_size=10, embed_dim=8, hidden_dim=6, seed=0)
        short = enc(np.array([[1, 2]]), np.array([[1.0, 1.0]]))
        padded = enc(np.array([[1, 2, 7, 7]]), np.array([[1.0, 1.0, 0.0, 0.0]]))
        assert np.allclose(short.data, padded.data)

    def test_lstm_order_sensitivity(self):
        enc = LSTMEncoder(vocab_size=10, embed_dim=8, hidden_dim=6, seed=0)
        a = enc(np.array([[1, 2, 3]]))
        b = enc(np.array([[3, 2, 1]]))
        assert not np.allclose(a.data, b.data)

    def test_lstm_gradient_flows_to_embedding(self):
        enc = LSTMEncoder(vocab_size=10, embed_dim=4, hidden_dim=4, seed=0)
        enc(np.array([[1, 2]])).sum().backward()
        assert enc.embedding.weight.grad is not None
        assert np.abs(enc.embedding.weight.grad[1]).sum() > 0

    def test_rnn_output_shape(self):
        enc = RNNEncoder(vocab_size=5, embed_dim=4, hidden_dim=3, num_layers=1, seed=0)
        assert enc(np.array([[1, 2, 3, 4]])).shape == (1, 3)

    def test_invalid_layers_raises(self):
        with pytest.raises(ValueError):
            LSTMEncoder(vocab_size=5, num_layers=0)

    def test_1d_input_promoted(self):
        enc = RNNEncoder(vocab_size=5, embed_dim=4, hidden_dim=3, seed=0)
        assert enc(np.array([1, 2])).shape == (1, 3)


class TestTransformerEncoder:
    def test_output_shape(self):
        enc = TransformerEncoder(vocab_size=12, embed_dim=8, hidden_dim=6, num_layers=2, seed=0)
        assert enc(np.array([[1, 2, 3], [4, 5, 6]])).shape == (2, 6)

    def test_mask_excludes_padding(self):
        enc = TransformerEncoder(vocab_size=12, embed_dim=8, hidden_dim=6, num_layers=1, seed=0)
        short = enc(np.array([[1, 2]]), np.array([[1.0, 1.0]]))
        padded = enc(np.array([[1, 2, 9]]), np.array([[1.0, 1.0, 0.0]]))
        assert np.allclose(short.data, padded.data, atol=1e-8)

    def test_gradient_flows(self):
        enc = TransformerEncoder(vocab_size=8, embed_dim=4, hidden_dim=4, num_layers=1, seed=0)
        enc(np.array([[1, 2, 3]])).sum().backward()
        grads = [p.grad for p in enc.parameters() if p.grad is not None]
        assert len(grads) > 0

    def test_position_sensitivity(self):
        enc = TransformerEncoder(vocab_size=8, embed_dim=8, hidden_dim=4, num_layers=1, seed=0)
        a = enc(np.array([[1, 2]]))
        b = enc(np.array([[2, 1]]))
        assert not np.allclose(a.data, b.data)
