"""Autodiff correctness: finite-difference gradient checks and op semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concat, log_softmax, softmax, stack


def numeric_gradient(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x0."""
    grad = np.zeros_like(x0)
    flat = x0.ravel()
    g = grad.ravel()
    for i in range(flat.size):
        plus, minus = flat.copy(), flat.copy()
        plus[i] += eps
        minus[i] -= eps
        g[i] = (fn(plus.reshape(x0.shape)) - fn(minus.reshape(x0.shape))) / (2 * eps)
    return grad


def check_gradient(build, x0: np.ndarray, atol: float = 1e-6) -> None:
    """Compare autodiff gradient against finite differences."""
    t = Tensor(x0, requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_gradient(lambda x: build(Tensor(x, requires_grad=True)).item(), x0)
    assert np.allclose(t.grad, num, atol=atol), f"max err {np.abs(t.grad - num).max()}"


class TestBasicOps:
    def test_add_backward(self, rng):
        check_gradient(lambda t: (t + 2.0).sum(), rng.normal(size=(3, 4)))

    def test_mul_backward(self, rng):
        check_gradient(lambda t: (t * t).sum(), rng.normal(size=(3, 4)))

    def test_div_backward(self, rng):
        check_gradient(lambda t: (1.0 / (t + 5.0)).sum(), rng.uniform(1, 2, size=(3, 3)))

    def test_pow_backward(self, rng):
        check_gradient(lambda t: (t**3).sum(), rng.uniform(0.5, 2, size=(2, 3)))

    def test_matmul_backward(self, rng):
        W = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ W).sum(), rng.normal(size=(3, 4)))

    def test_sub_and_neg(self, rng):
        check_gradient(lambda t: (5.0 - t - t).sum(), rng.normal(size=(2, 2)))

    def test_rsub_rdiv(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (4.0 / t) + (3.0 - t)
        out.backward()
        assert t.grad[0] == pytest.approx(-4.0 / 4.0 - 1.0)


class TestNonlinearities:
    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.normal(size=(3, 3)))

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.normal(size=(3, 3)))

    def test_relu_gradient_mask(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        assert t.grad.tolist() == [0.0, 1.0]

    def test_exp_log(self, rng):
        check_gradient(lambda t: (t.exp().log()).sum(), rng.uniform(0.5, 2, size=(2, 3)))

    def test_sqrt(self, rng):
        check_gradient(lambda t: t.sqrt().sum(), rng.uniform(1, 4, size=(2, 2)), atol=1e-5)


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(
            lambda t: (t / t.sum(axis=1, keepdims=True)).sum(), rng.uniform(1, 2, size=(3, 4))
        )

    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), rng.normal(size=(2, 3)))

    def test_transpose(self, rng):
        W = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t.transpose() @ W).sum(), rng.normal(size=(3, 4)))

    def test_swapaxes(self, rng):
        check_gradient(lambda t: (t.swapaxes(0, 1) ** 2).sum(), rng.normal(size=(2, 3)))

    def test_getitem_slice(self, rng):
        check_gradient(lambda t: (t[:, 1:3] ** 2).sum(), rng.normal(size=(3, 5)))

    def test_getitem_accumulates_on_repeat_index(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        idx = np.array([0, 0, 1])
        t[idx].sum().backward()
        assert t.grad.tolist() == [2.0, 1.0]


class TestBroadcasting:
    def test_add_broadcast_bias(self, rng):
        b0 = rng.normal(size=3)
        X = rng.normal(size=(4, 3))
        t = Tensor(b0, requires_grad=True)
        ((Tensor(X) + t) ** 2).sum().backward()
        num = numeric_gradient(lambda b: (((X + b) ** 2).sum()), b0)
        assert np.allclose(t.grad, num, atol=1e-5)

    def test_mul_broadcast_scalar_shape(self):
        t = Tensor(np.array([[2.0]]), requires_grad=True)
        (t * Tensor(np.ones((3, 4)))).sum().backward()
        assert t.grad.shape == (1, 1)
        assert t.grad[0, 0] == 12.0


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        out = t * t + t
        out.backward()
        assert t.grad[0] == pytest.approx(2 * 3.0 + 1.0)

    def test_detach_blocks_gradient(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = t.detach() * 10.0
        assert not out.requires_grad

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self, rng):
        """A node used along two paths gets both contributions."""
        check_gradient(
            lambda t: ((t * 2.0) + (t.tanh())).sum(), rng.normal(size=(3,))
        )


class TestCompositeFunctions:
    def test_concat_gradient(self, rng):
        a0, b0 = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (concat([a, b], axis=1) ** 2).sum().backward()
        assert np.allclose(a.grad, 2 * a0)
        assert np.allclose(b.grad, 2 * b0)

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        stacked = stack([a, b], axis=0)
        (stacked * Tensor(np.array([[1.0, 1, 1], [2.0, 2, 2]]))).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 2.0)

    def test_softmax_rows_sum_to_one(self, rng):
        s = softmax(Tensor(rng.normal(size=(4, 5))), axis=1)
        assert np.allclose(s.data.sum(axis=1), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-9)

    def test_softmax_stable_for_large_inputs(self):
        s = softmax(Tensor(np.array([[1000.0, 1000.0]])))
        assert np.allclose(s.data, 0.5)

    def test_log_softmax_gradient(self, rng):
        x0 = rng.normal(size=(2, 4))
        t = Tensor(x0, requires_grad=True)
        log_softmax(t, axis=1)[0, 1].backward()
        num = numeric_gradient(
            lambda x: log_softmax(Tensor(x, requires_grad=True), axis=1)[0, 1].item(), x0
        )
        assert np.allclose(t.grad, num, atol=1e-5)

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_random_composite_gradcheck(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        x0 = rng.uniform(0.5, 1.5, size=(n, m))

        def build(t):
            return ((t.tanh() * t).sigmoid() + t.exp().log()).mean()

        check_gradient(build, x0, atol=1e-5)


class TestNoGrad:
    """no_grad(): identical forward bits, no graph, restored on exit."""

    def test_forward_bits_identical_and_graph_skipped(self, rng):
        from repro.nn.tensor import no_grad

        x0 = rng.normal(size=(3, 4))
        w0 = rng.normal(size=(4, 2))
        recorded = (Tensor(x0, requires_grad=True) @ Tensor(w0)).tanh().mean()
        with no_grad():
            free = (Tensor(x0, requires_grad=True) @ Tensor(w0)).tanh().mean()
        assert free.data.tobytes() == recorded.data.tobytes()
        assert not free.requires_grad
        with pytest.raises(RuntimeError):
            free.backward()

    def test_flag_restored_even_on_error(self, rng):
        from repro.nn.tensor import no_grad

        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        t = Tensor(rng.normal(size=3), requires_grad=True) * 2.0
        assert t.requires_grad  # graph construction is back on

    def test_nesting(self, rng):
        from repro.nn.tensor import no_grad

        with no_grad():
            with no_grad():
                pass
            inner = Tensor(rng.normal(size=3), requires_grad=True) * 2.0
            assert not inner.requires_grad
