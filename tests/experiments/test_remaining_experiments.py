"""Schema tests for the experiment modules only exercised by benches so far."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import SMOKE, fig9, fig10, fig13
from repro.experiments.fig14 import post_hoc_novelty_distances


class TestFig9Schema:
    def test_points_per_method(self):
        data = fig9.run(SMOKE, seed=0, datasets=["pima_indian"], methods=["lda", "fastft"])
        points = data["points"]["pima_indian"]
        assert set(points) == {"lda", "fastft"}
        for wall, score in points.values():
            assert wall > 0 and np.isfinite(score)
        assert "lda" in fig9.format_report(data)


class TestFig10Schema:
    def test_sizes_monotone_and_rows_aligned(self):
        data = fig10.run(
            SMOKE, seed=0, scales=[0.02, 0.05], methods=["fastft", "openfe"]
        )
        assert data["sizes"] == sorted(data["sizes"])
        assert len(data["times"]["fastft"]) == 2
        assert len(data["scores"]["openfe"]) == 2
        assert "fastft" in fig10.format_report(data)


class TestFig13Schema:
    def test_sweep_structure(self):
        data = fig13.run(
            SMOKE,
            seed=0,
            datasets=["pima_indian"],
            novelty_weights=[0.1],
            decay_steps=[100],
            memory_sizes=[8],
        )
        assert set(data["sweeps"]) == {"epsilon_s", "decay_M", "memory_S"}
        for per_dataset in data["sweeps"].values():
            points = per_dataset["pima_indian"]
            assert len(points) == 1
            assert np.isfinite(points[0]["score"])


class TestPostHocNoveltyDistances:
    def test_first_sequence_is_maximally_novel(self):
        sequences = [[1, 5, 2], [1, 5, 2], [1, 9, 2]]
        distances = post_hoc_novelty_distances(sequences, vocab_size=32, seed=0)
        assert distances[0] == 1.0
        # Exact repeat has ~zero distance to its twin.
        assert distances[1] == pytest.approx(0.0, abs=1e-9)
        # A different sequence is more novel than the exact repeat.
        assert distances[2] > distances[1]

    def test_deterministic_given_seed(self):
        sequences = [[1, 2, 3], [3, 2, 1]]
        a = post_hoc_novelty_distances(sequences, vocab_size=16, seed=4)
        b = post_hoc_novelty_distances(sequences, vocab_size=16, seed=4)
        assert a == b
