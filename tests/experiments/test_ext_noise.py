"""Tests for the noise-robustness extension experiment."""

from __future__ import annotations

import numpy as np

from repro.experiments import SMOKE, ext_noise


class TestExtNoise:
    def test_run_schema(self):
        data = ext_noise.run(SMOKE, seed=0, dataset_name="pima_indian",
                             noise_levels=[0.0, 0.3])
        assert [r["noise"] for r in data["rows"]] == [0.0, 0.3]
        for row in data["rows"]:
            assert {"raw", "fastft", "erg"} <= set(row)
            assert all(np.isfinite(v) for k, v in row.items())

    def test_zero_noise_matches_clean_data(self):
        data = ext_noise.run(SMOKE, seed=0, dataset_name="pima_indian", noise_levels=[0.0])
        # With σ=0 the "noisy" evaluation is the plain evaluation; scores
        # must be plausible task scores, not degenerate values.
        row = data["rows"][0]
        assert 0.0 <= row["fastft"] <= 1.0

    def test_custom_baseline(self):
        data = ext_noise.run(
            SMOKE, seed=0, dataset_name="pima_indian", noise_levels=[0.0], baseline="rfg"
        )
        assert data["baseline"] == "rfg"
        assert "rfg" in data["rows"][0]

    def test_report_mentions_noise(self):
        data = ext_noise.run(SMOKE, seed=0, dataset_name="pima_indian", noise_levels=[0.0])
        assert "noise" in ext_noise.format_report(data).lower()
