"""Tests for the experiment harnesses (profiles, runners, reports).

Each run() is exercised with the SMOKE profile on the smallest sensible
dataset subset — these are integration tests of the full stack, so keep the
budgets tiny.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    FULL,
    SMOKE,
    make_baseline,
    make_fastft_config,
    run_baseline_on_dataset,
    run_fastft_on_dataset,
)
from repro.experiments import (
    fig6,
    fig7,
    fig8,
    fig11,
    fig12,
    fig14,
    fig15,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.harness import load_profile_dataset
from repro.experiments.reporting import format_kv_block, format_table


class TestProfilesAndHarness:
    def test_full_matches_paper_settings(self):
        assert FULL.episodes == 200
        assert FULL.steps_per_episode == 15
        assert FULL.cold_start_episodes == 10
        assert FULL.cv_splits == 5
        assert FULL.n_runs == 5

    def test_make_fastft_config_applies_profile(self):
        cfg = make_fastft_config(SMOKE, seed=1)
        assert cfg.episodes == SMOKE.episodes
        assert cfg.cv_splits == SMOKE.cv_splits
        assert cfg.seed == 1

    def test_make_fastft_config_overrides(self):
        cfg = make_fastft_config(SMOKE, use_novelty=False, alpha=3.0)
        assert not cfg.use_novelty
        assert cfg.alpha == 3.0

    def test_make_baseline_budgets(self):
        rfg = make_baseline("rfg", SMOKE, seed=0)
        assert rfg.n_rounds == SMOKE.baseline_kwargs["rfg"]["n_rounds"]
        assert rfg.cv_splits == SMOKE.cv_splits

    def test_make_baseline_unknown_raises(self):
        with pytest.raises(KeyError):
            make_baseline("autogluon", SMOKE)

    def test_run_fastft_on_dataset(self):
        ds = load_profile_dataset("pima_indian", SMOKE, seed=0)
        result, wall = run_fastft_on_dataset(ds, SMOKE, seed=0)
        assert wall > 0
        assert np.isfinite(result.best_score)

    def test_run_baseline_on_dataset(self):
        ds = load_profile_dataset("pima_indian", SMOKE, seed=0)
        res = run_baseline_on_dataset("rfg", ds, SMOKE, seed=0)
        assert np.isfinite(res.best_score)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_format_table_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_kv_block(self):
        out = format_kv_block("Block", {"x": 1, "long_key": 2})
        assert "x        : 1" in out


class TestExperimentRuns:
    def test_table1_minimal(self):
        data = table1.run(SMOKE, seed=0, datasets=["pima_indian"], methods=["rfg", "fastft"])
        assert data["scores"]["pima_indian"]["fastft"]
        report = table1.format_report(data)
        assert "pima_indian" in report and "FASTFT" in report

    def test_table2_minimal(self):
        data = table2.run(SMOKE, seed=0, datasets=["pima_indian"])
        row = data["rows"]["pima_indian"]
        assert row["fastft"]["overall"] > 0
        assert row["fastft_no_pp"]["evaluation"] > 0
        assert "Table II" in table2.format_report(data)

    def test_table3_minimal(self):
        data = table3.run(SMOKE, seed=0, methods=["lda", "fastft"])
        assert set(data["table"]) == {"lda", "fastft"}
        assert set(data["table"]["fastft"]) == set(data["models"])
        assert "Ridge-C" in table3.format_report(data)

    def test_table4_minimal(self):
        data = table4.run(SMOKE, seed=0, top_k=5)
        assert len(data["original"]) == 5
        assert len(data["transformed"]) <= 5
        assert 0 < data["original_sum"] <= 1.0
        assert "Table IV" in table4.format_report(data)

    def test_fig6_minimal(self):
        data = fig6.run(SMOKE, seed=0, datasets=["pima_indian"])
        assert set(data["scores"]["pima_indian"]) == set(fig6.ARMS)
        assert "FastFT-NE" in fig6.format_report(data)

    def test_fig7_minimal(self):
        data = fig7.run(
            SMOKE, seed=0, dataset_name="pima_indian", frameworks=["actor_critic", "dqn"]
        )
        assert len(data["curves"]["actor_critic"]) == SMOKE.episodes
        assert "actor_critic" in fig7.format_report(data)

    def test_fig8_minimal(self):
        data = fig8.run(SMOKE, seed=0, dataset_name="pima_indian", seq_models=["lstm", "rnn"])
        assert data["rows"]["lstm"]["estimation_time"] >= 0
        assert "lstm" in fig8.format_report(data)

    def test_fig11_memory_curve_monotone(self):
        data = fig11.run(SMOKE, seed=0, seq_lengths=[16, 64, 256])
        totals = [p["total_bytes"] for p in data["memory_curve"]]
        assert totals == sorted(totals)
        assert "Fig 11" in fig11.format_report(data)

    def test_fig12_zero_thresholds_eliminate_exploration_evals(self):
        data = fig12.run(
            SMOKE,
            seed=0,
            dataset_name="pima_indian",
            alpha_values=[0.0, 20.0],
            beta_values=[5.0],
        )
        zero, high = data["alpha_sweep"]
        assert zero["n_downstream_calls"] <= high["n_downstream_calls"]
        assert "Fig 12" in fig12.format_report(data)

    def test_fig14_minimal(self):
        data = fig14.run(SMOKE, seed=0, dataset_name="pima_indian")
        assert set(data["arms"]) == {"FastFT", "FastFT-NE"}
        assert data["arms"]["FastFT"]["final_unencountered"] > 0
        assert "novelty" in fig14.format_report(data).lower()

    def test_fig15_minimal(self):
        data = fig15.run(SMOKE, seed=0, top_k=3)
        assert len(data["peaks"]) == 3
        report = fig15.format_report(data)
        assert "reward peaks" in report.lower() or "Fig 15" in report
