"""Shared fixtures: small deterministic datasets for fast tests."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def binary_data(rng):
    """Linearly-ish separable binary classification data (200 x 5)."""
    X = rng.normal(size=(200, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] - 0.2 * X[:, 2] > 0).astype(int)
    return X, y


@pytest.fixture
def multiclass_data(rng):
    """Three-class data driven by a single latent score (240 x 4)."""
    X = rng.normal(size=(240, 4))
    score = X[:, 0] * X[:, 1] + X[:, 2]
    edges = np.quantile(score, [1 / 3, 2 / 3])
    y = np.searchsorted(edges, score)
    return X, y


@pytest.fixture
def regression_data(rng):
    """Nonlinear regression data (200 x 5)."""
    X = rng.normal(size=(200, 5))
    y = X[:, 0] * X[:, 1] + 0.5 * X[:, 2] ** 2 + 0.1 * rng.normal(size=200)
    return X, y


@pytest.fixture
def detection_data(rng):
    """Imbalanced anomaly data: 8% positives shifted off-manifold (300 x 4)."""
    X = rng.normal(size=(300, 4))
    y = (rng.random(300) < 0.08).astype(int)
    X[y == 1] += 2.5
    return X, y


@pytest.fixture
def tiny_dataset():
    """A scaled registry dataset for integration tests."""
    from repro.data import load_dataset

    return load_dataset("openml_589", scale=0.15, seed=0)
