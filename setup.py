"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable.
Keeping an explicit ``setup.py`` and omitting ``[build-system]`` from
``pyproject.toml`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works with plain setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FastFT: Accelerating Reinforced Feature Transformation via Advanced "
        "Exploration Strategies (ICDE 2025) — full reproduction"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
